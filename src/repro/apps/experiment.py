"""High-level experiment harness used by examples and benchmarks.

Ties everything together: build a fabric, pick a scheme (which sets both the
fabric's uplink selector and the end-host transport), drive it with the
paper's workloads, and collect the evaluation's metrics.  The scheme
definitions mirror §5's comparison set:

* ``ecmp`` — static hashing, plain TCP;
* ``conga`` — CONGA with the default 500 µs flowlet timeout, plain TCP;
* ``conga-flow`` — CONGA with a 13 ms timeout (one decision per flow);
* ``caft`` — CONGA extended with liveness/residual-rate path weighting and
  accelerated stale-feedback re-probing (3-tier fault tolerance; pod
  spines also swap blind inter-pod ECMP for the weighted flowlet choice);
* ``mptcp`` — ECMP in the fabric, MPTCP with 8 subflows at the hosts;
* ``local`` — the local-congestion-aware strawman of §2.4;
* ``spray`` — per-packet round-robin spraying;
* ``dctcp`` — ECMP in the fabric, DCTCP at the hosts (pair with a config
  that sets ``ecn_threshold_bytes``, or the ECN-proportional backoff never
  engages and it degenerates to plain Reno).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.analysis.fct import FctSummary
from repro.analysis.monitors import QueueMonitor, ThroughputImbalanceMonitor
from repro.apps.traffic import (
    CrossRackTraffic,
    FlowFactory,
    dctcp_flow_factory,
    mptcp_flow_factory,
    tcp_flow_factory,
)
from repro.lb import (
    CaftSelector,
    CentralizedScheduler,
    CentralizedSelector,
    CongaFlowSelector,
    CongaSelector,
    EcmpSelector,
    LocalAwareSelector,
    PacketSpraySelector,
)
from repro.lb.caft import enable_fault_awareness
from repro.faults.events import FaultEvent
from repro.faults.injector import FaultInjector
from repro.lb.base import SelectorFactory
from repro.obs.config import ObsSpec
from repro.obs.timeline import Timeline, TimelineCollector
from repro.sim import Simulator
from repro.switch.fabric import Fabric
from repro.topology.leafspine import LeafSpineConfig, build_leaf_spine, scaled_testbed
from repro.topology.multipod import MultiPodConfig, build_multipod
from repro.transport.tcp import FlowRecord, TcpParams
from repro.workloads.distributions import FlowSizeDistribution
from repro.units import milliseconds, seconds


@dataclass(frozen=True)
class SchemeSpec:
    """A named (fabric selector, host transport) combination.

    ``post_setup`` (optional) is invoked with (sim, fabric) after the
    fabric is finalized — used by schemes that need a control-plane agent,
    like the Hedera-style centralized scheduler.
    """

    name: str
    make_selector: Callable[[], SelectorFactory]
    make_flow_factory: Callable[[TcpParams], FlowFactory]
    post_setup: Callable[[Simulator, Fabric], object] | None = None


def _tcp(params: TcpParams) -> FlowFactory:
    return tcp_flow_factory(params)


def _mptcp(params: TcpParams) -> FlowFactory:
    return mptcp_flow_factory(params)


class UnknownSchemeError(ValueError):
    """Raised when a scheme name is not in the registry."""


#: The scheme registry.  Read through :func:`get_scheme` and write through
#: :func:`register_scheme`; the dict itself is kept public for backwards
#: compatibility with code that enumerates or mutates it directly.
SCHEMES: dict[str, SchemeSpec] = {}


def register_scheme(spec: SchemeSpec, *, replace: bool = False) -> SchemeSpec:
    """Add ``spec`` to the scheme registry under ``spec.name``.

    Registering a name that already exists raises unless ``replace=True``
    (benchmarks that re-register parameterized variants pass it).  Returns
    the spec so registration can be used inline.
    """
    if not replace and spec.name in SCHEMES:
        raise ValueError(
            f"scheme {spec.name!r} is already registered; "
            "pass replace=True to overwrite it"
        )
    SCHEMES[spec.name] = spec  # repro-lint: ignore[S203] -- the sanctioned write point
    return spec


def get_scheme(name: str) -> SchemeSpec:
    """Look up a registered scheme, with a helpful unknown-name error."""
    spec = SCHEMES.get(name)
    if spec is None:
        known = ", ".join(sorted(SCHEMES))
        raise UnknownSchemeError(
            f"unknown scheme {name!r}; registered schemes: {known}. "
            "Add new schemes with repro.apps.register_scheme(SchemeSpec(...))."
        )
    return spec


for _spec in (
    SchemeSpec("ecmp", EcmpSelector.factory, _tcp),
    SchemeSpec("conga", CongaSelector.factory, _tcp),
    SchemeSpec("conga-flow", CongaFlowSelector.factory, _tcp),
    SchemeSpec(
        "caft",
        CaftSelector.factory,
        _tcp,
        post_setup=enable_fault_awareness,
    ),
    SchemeSpec("mptcp", EcmpSelector.factory, _mptcp),
    SchemeSpec("local", LocalAwareSelector.factory, _tcp),
    SchemeSpec("spray", PacketSpraySelector.factory, _tcp),
    SchemeSpec("dctcp", EcmpSelector.factory, dctcp_flow_factory),
    SchemeSpec(
        "hedera",
        lambda: CentralizedSelector,
        _tcp,
        post_setup=lambda sim, fabric: CentralizedScheduler(sim, fabric),
    ),
):
    register_scheme(_spec)
del _spec


@dataclass
class ExperimentResult:
    """Everything a benchmark needs from one run."""

    scheme: str
    workload: str
    load: float
    records: list[FlowRecord]
    arrivals: int
    completed: int
    sim: Simulator
    fabric: Fabric
    imbalance: ThroughputImbalanceMonitor | None = None
    queues: QueueMonitor | None = None
    #: The fault injector driving this run's fault schedule (None when the
    #: spec had no faults); ``injector.applied`` logs what fired and when.
    injector: FaultInjector | None = None
    #: Sender-side loss-recovery totals over completed flows — the
    #: degradation counters the fault-plane analysis reports.
    retransmissions: int = 0
    timeouts: int = 0
    #: Frozen sim-time telemetry snapshot when the run's ``ObsSpec``
    #: carried a :class:`~repro.obs.timeline.TimelineSpec`; None otherwise.
    timeline: Timeline | None = None
    _summary: FctSummary | None = field(default=None, repr=False)

    @property
    def summary(self) -> FctSummary:
        """Lazily computed FCT summary over completed flows."""
        if self._summary is None:
            self._summary = FctSummary.from_records(self.records)
        return self._summary

    @property
    def unfinished(self) -> int:
        """Flows that arrived but did not finish before the deadline.

        A large value at high load is itself a result: it is how the
        paper's "network becomes unstable" regime (Fig. 11, ECMP past 50%
        load with a failed link) shows up.
        """
        return self.arrivals - self.completed


def execute_experiment(
    spec: SchemeSpec,
    workload: FlowSizeDistribution,
    load: float,
    *,
    config: LeafSpineConfig | MultiPodConfig | None = None,
    seed: int = 1,
    num_flows: int = 400,
    size_scale: float = 0.1,
    clients: list[int] | None = None,
    tcp_params: TcpParams = TcpParams(),
    failed_links: list[tuple[int, int, int]] | None = None,
    faults: tuple[FaultEvent, ...] = (),
    monitor_imbalance_leaf: int | None = None,
    imbalance_interval: int | None = None,
    monitor_queue_ports: Callable[[Fabric], list] | None = None,
    queue_interval: int | None = None,
    deadline: int = seconds(20),
    obs: ObsSpec | None = None,
) -> ExperimentResult:
    """Run one experiment point against a resolved :class:`SchemeSpec`.

    This is the single execution path under the declarative
    :class:`repro.apps.spec.ExperimentSpec` API; call it directly when a
    test needs live ``Simulator``/``Fabric`` access or callable monitor
    hooks that the picklable spec cannot carry.

    ``config`` selects the fabric: a :class:`LeafSpineConfig` builds the
    2-tier testbed, a :class:`~repro.topology.multipod.MultiPodConfig` the
    3-tier pods-plus-core fabric of §7 (where core-tier fault targets and
    the ``caft`` scheme's pod-spine weighting become meaningful).
    ``failed_links`` is a list of (leaf_id, spine_id, which) tuples failed
    before traffic starts — e.g. ``[(1, 1, 0)]`` reproduces Figure 7(b).
    ``faults`` is a schedule of :class:`repro.faults.FaultEvent` values: a
    :class:`~repro.faults.FaultInjector` applies time-0 events here as
    initial conditions (equivalent to ``failed_links`` for ``LinkDown``)
    and schedules the rest on the kernel, so degradation can arrive and
    clear mid-run.  ``monitor_imbalance_leaf`` attaches a Fig.-12-style
    monitor to that leaf's uplinks.  ``monitor_queue_ports`` selects ports
    for occupancy sampling (Fig. 11c / Fig. 16).
    """
    if config is None:
        config = scaled_testbed()
    sim = Simulator(seed=seed)
    if obs is not None:
        # Attach before any component is built so construction-time events
        # (e.g. time-0 fault applications) are captured too.
        sim.tracer = obs.make_tracer()
    if isinstance(config, MultiPodConfig):
        fabric: Fabric = build_multipod(sim, config)
    else:
        fabric = build_leaf_spine(sim, config)
    fabric.finalize(spec.make_selector())
    if spec.post_setup is not None:
        spec.post_setup(sim, fabric)
    for leaf_id, spine_id, which in failed_links or []:
        fabric.fail_link(leaf_id, spine_id, which)
    # Construct the injector before monitors attach: time-0 faults are
    # initial conditions, and declarative monitor specs (which exclude down
    # ports) must resolve against the already-degraded fabric.  With an
    # empty schedule nothing is constructed, keeping fault-free runs
    # event-for-event identical to the pre-fault-plane kernel stream.
    injector = FaultInjector(sim, fabric, faults) if faults else None

    imbalance = None
    if monitor_imbalance_leaf is not None:
        # Scaled-down runs are much shorter than the testbed's, so sample
        # every 1 ms by default instead of the paper's 10 ms windows.
        interval = imbalance_interval or milliseconds(1)
        imbalance = ThroughputImbalanceMonitor(
            sim, list(fabric.leaves[monitor_imbalance_leaf].uplinks), interval
        )
        imbalance.start()
    queues = None
    if monitor_queue_ports is not None:
        queues = QueueMonitor(
            sim, monitor_queue_ports(fabric), queue_interval or milliseconds(1)
        )
        queues.start()

    traffic = CrossRackTraffic(
        sim,
        fabric,
        workload,
        load,
        flow_factory=spec.make_flow_factory(tcp_params),
        num_flows=num_flows,
        size_scale=size_scale,
        clients=clients,
        on_all_done=sim.stop,
    )
    traffic.start()
    timeline = None
    if obs is not None and obs.timeline is not None:
        # Constructed after traffic so goodput/RTO series can read its
        # stats; sampling is strictly read-only (see repro.obs.timeline),
        # so flow records stay bit-identical with the collector on or off.
        timeline = TimelineCollector(
            sim, fabric, obs.timeline, traffic=traffic, injector=injector
        )
        timeline.start()
    sim.run(until=deadline)

    if imbalance is not None:
        imbalance.stop()
    if queues is not None:
        queues.stop()
    if timeline is not None:
        timeline.stop()
    if sim.tracer is not None:
        # Flush/close the optional NDJSON stream sink; the in-memory ring
        # stays readable for snapshotting.
        sim.tracer.close()
    return ExperimentResult(
        scheme=spec.name,
        workload=workload.name,
        load=load,
        records=traffic.stats.records,
        arrivals=traffic.stats.arrivals,
        completed=traffic.stats.completed,
        sim=sim,
        fabric=fabric,
        imbalance=imbalance,
        queues=queues,
        injector=injector,
        retransmissions=traffic.stats.retransmissions,
        timeouts=traffic.stats.timeouts,
        timeline=timeline.snapshot() if timeline is not None else None,
    )


def compare_schemes(
    schemes: list[str],
    workload: FlowSizeDistribution,
    load: float,
    **kwargs,
) -> dict[str, ExperimentResult]:
    """Run several schemes on the identical scenario (same seed/workload)."""
    return {
        scheme: execute_experiment(get_scheme(scheme), workload, load, **kwargs)
        for scheme in schemes
    }


__all__ = [
    "ExperimentResult",
    "SCHEMES",
    "SchemeSpec",
    "UnknownSchemeError",
    "compare_schemes",
    "execute_experiment",
    "get_scheme",
    "register_scheme",
]
