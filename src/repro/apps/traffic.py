"""Open-loop empirical traffic generation (paper §5.2).

Reproduces the paper's client-server traffic generator: every host runs a
client that requests flows according to a Poisson process from randomly
chosen servers under *other* leaves (so all generated traffic crosses the
spine, stressing fabric load balancing), with flow sizes sampled from an
empirical distribution.  Data flows from the chosen server back to the
requesting client.

Load is defined relative to the fabric bisection: at load 1.0 each leaf's
uplink capacity is fully utilized in expectation.  With the testbed's 2:1
oversubscription this matches the paper's axis, where 100% load means
saturated uplinks (not saturated host NICs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Protocol

from repro.transport.dctcp import DctcpCC
from repro.transport.mptcp import DEFAULT_SUBFLOWS, MptcpConnection
from repro.transport.tcp import FlowRecord, PacedSource, TcpFlow, TcpParams
from repro.units import microseconds
from repro.workloads.distributions import FlowSizeDistribution

if TYPE_CHECKING:
    from repro.net.node import Host
    from repro.sim import Simulator
    from repro.switch.fabric import Fabric


class Flow(Protocol):
    """Anything start-able that eventually completes with an FCT."""

    def start(self) -> None: ...  # noqa: E704 - protocol stub

    @property
    def fct(self) -> int: ...  # noqa: E704 - protocol stub


FlowFactory = Callable[["Host", "Host", int, Callable[[Flow], None]], Flow]


def tcp_flow_factory(params: TcpParams = TcpParams()) -> FlowFactory:
    """Flows carried by a single TCP connection."""

    def factory(src: "Host", dst: "Host", size: int, done: Callable) -> TcpFlow:
        return TcpFlow(src.sim, src, dst, size, params=params, on_complete=done)

    return factory


def bursty_tcp_flow_factory(
    params: TcpParams = TcpParams(),
    *,
    burst_bytes: int = 65_536,
    mean_gap: int = microseconds(600),
) -> FlowFactory:
    """TCP flows whose application releases data in paced bursts.

    Models the burstiness of production datacenter senders (paper 2.6.1):
    inter-burst gaps straddle the flowlet timeout, so flowlet-granular
    schemes get mid-flow rebalancing opportunities.  Used by the Figure 12
    load-balancing-efficiency experiment.
    """

    def factory(src: "Host", dst: "Host", size: int, done: Callable) -> TcpFlow:
        source = PacedSource(
            src.sim, size, burst_bytes=burst_bytes, mean_gap=mean_gap
        )
        return TcpFlow(
            src.sim, src, dst, size, params=params, source=source,
            on_complete=done,
        )

    return factory


def dctcp_flow_factory(params: TcpParams = TcpParams()) -> FlowFactory:
    """Flows carried by DCTCP connections.

    Requires a fabric built with ``ecn_threshold_bytes`` set so switches
    CE-mark; without marking this degenerates to plain NewReno.
    """

    def factory(src: "Host", dst: "Host", size: int, done: Callable) -> TcpFlow:
        return TcpFlow(
            src.sim, src, dst, size, params=params, cc=DctcpCC(),
            on_complete=done,
        )

    return factory


def mptcp_flow_factory(
    params: TcpParams = TcpParams(), subflows: int = DEFAULT_SUBFLOWS
) -> FlowFactory:
    """Flows carried by MPTCP connections with ``subflows`` subflows."""

    def factory(
        src: "Host", dst: "Host", size: int, done: Callable
    ) -> MptcpConnection:
        return MptcpConnection(
            src.sim, src, dst, size,
            num_subflows=subflows, params=params, on_complete=done,
        )

    return factory


@dataclass
class TrafficStats:
    """Aggregate outcome of a traffic run.

    ``retransmissions`` / ``fast_retransmits`` / ``timeouts`` sum the
    sender-side loss-recovery counters of *completed* flows — the
    degradation signal the fault-plane analysis reports alongside goodput
    (flows still in recovery at the deadline show up in ``unfinished``
    instead).
    """

    records: list[FlowRecord] = field(default_factory=list)
    arrivals: int = 0
    completed: int = 0
    retransmissions: int = 0
    fast_retransmits: int = 0
    timeouts: int = 0

    @property
    def unfinished(self) -> int:
        """Flows that had arrived but did not finish before the deadline."""
        return self.arrivals - self.completed


def _flow_senders(flow: Flow):
    """The TCP sender objects behind ``flow`` (one, or MPTCP's subflows)."""
    sender = getattr(flow, "sender", None)
    if sender is not None:
        return (sender,)
    return tuple(getattr(flow, "subflows", ()))


class CrossRackTraffic:
    """Poisson open-loop cross-rack traffic on a Leaf-Spine fabric.

    Parameters
    ----------
    load:
        Offered load as a fraction of each leaf's uplink bisection capacity.
    num_flows:
        Total flow arrivals to generate across all clients.
    size_scale:
        Multiplier applied to sampled flow sizes.  Used to scale experiments
        down for simulation runtime while preserving the *shape* of the
        distribution (and hence the coefficient of variation that §6.2
        shows governs load balancing difficulty).
    """

    def __init__(
        self,
        sim: "Simulator",
        fabric: "Fabric",
        workload: FlowSizeDistribution,
        load: float,
        *,
        flow_factory: FlowFactory,
        num_flows: int,
        size_scale: float = 1.0,
        clients: list[int] | None = None,
        stream: str = "traffic",
        on_all_done: Callable[[], None] | None = None,
    ) -> None:
        if not 0.0 < load:
            raise ValueError(f"load must be positive, got {load}")
        if num_flows < 1:
            raise ValueError(f"need at least one flow, got {num_flows}")
        if len(fabric.leaves) < 2:
            raise ValueError("cross-rack traffic needs at least two leaves")
        self.sim = sim
        self.fabric = fabric
        self.workload = workload
        self.load = load
        self.flow_factory = flow_factory
        self.num_flows = num_flows
        self.size_scale = size_scale
        self.on_all_done = on_all_done
        self._rng = sim.rng(stream)
        self.stats = TrafficStats()
        self._remaining = num_flows
        self._active = 0

        # Per-client arrival rate from the load definition: at load 1.0 the
        # expected server->client traffic into each leaf equals its uplink
        # capacity.  ``clients`` restricts which hosts request flows (e.g.
        # only hosts under leaf 1 to load one direction, as in Fig. 11's
        # hotspot analysis); by default every host is a client.
        self._clients = sorted(clients) if clients is not None else sorted(fabric.hosts)
        if not self._clients:
            raise ValueError("need at least one client host")
        leaf0 = fabric.leaves[0]
        uplink_capacity = sum(port.rate_bps for port in leaf0.uplinks)
        clients_per_leaf = max(
            1,
            len(self._clients)
            // len({fabric.leaf_of(c) for c in self._clients}),
        )
        per_client_bps = load * uplink_capacity / clients_per_leaf
        mean_size = workload.mean() * size_scale
        self._per_client_rate = per_client_bps / (8.0 * mean_size)  # flows/s

    def start(self) -> None:
        """Schedule the first arrival at every client."""
        for client in self._clients:
            self._schedule_arrival(client)

    def _schedule_arrival(self, client: int) -> None:
        gap_seconds = self._rng.exponential(1.0 / self._per_client_rate)
        # Bound method + arg slot instead of a closure: keeps the traffic
        # generator picklable and the per-arrival path allocation-free.
        self.sim.schedule(max(1, round(gap_seconds * 1e9)), self._arrive, client)

    def _arrive(self, client: int) -> None:
        if self._remaining <= 0:
            return
        self._remaining -= 1
        server = self._pick_server(client)
        size = max(1, round(self.workload.sample(self._rng) * self.size_scale))
        src_host = self.fabric.host(server)
        dst_host = self.fabric.host(client)
        started_at = self.sim.now
        record = FlowRecord(
            flow_id=0,
            src=server,
            dst=client,
            size=size,
            start_time=started_at,
            fct=0,
            ideal_fct=self.fabric.ideal_fct(server, client, size),
        )
        flow = self.flow_factory(
            src_host, dst_host, size, lambda f, r=record: self._complete(f, r)
        )
        self._active += 1
        self.stats.arrivals += 1
        flow.start()
        if self._remaining > 0:
            self._schedule_arrival(client)

    def _pick_server(self, client: int) -> int:
        client_leaf = self.fabric.leaf_of(client)
        other_leaves = [
            leaf.leaf_id
            for leaf in self.fabric.leaves
            if leaf.leaf_id != client_leaf
        ]
        leaf_id = other_leaves[int(self._rng.integers(len(other_leaves)))]
        servers = self.fabric.hosts_under(leaf_id)
        return servers[int(self._rng.integers(len(servers)))]

    def _complete(self, flow: Flow, record: FlowRecord) -> None:
        record.fct = flow.fct
        self.stats.records.append(record)
        self.stats.completed += 1
        for sender in _flow_senders(flow):
            stats = sender.stats
            self.stats.retransmissions += stats.retransmissions
            self.stats.fast_retransmits += stats.fast_retransmits
            self.stats.timeouts += stats.timeouts
        self._active -= 1
        if self.finished and self.on_all_done is not None:
            self.on_all_done()

    @property
    def finished(self) -> bool:
        """All arrivals generated and all flows completed."""
        return self._remaining <= 0 and self._active == 0


__all__ = [
    "CrossRackTraffic",
    "Flow",
    "FlowFactory",
    "TrafficStats",
    "mptcp_flow_factory",
    "tcp_flow_factory",
]
