"""HDFS TestDFSIO-style write benchmark model (paper §5.4, Figure 14).

The paper runs the standard TestDFSIO MapReduce job: many writers stream a
large file into HDFS with 3-way replication and the job completion time is
measured.  Network-wise, each written block generates a replication
pipeline: writer → first replica (HDFS places it off-rack) → second replica
(same rack as the first).  Many such pipelines run concurrently, producing
the large synchronized transfers that make ECMP's hash collisions and the
asymmetric-link hotspot hurt.

This model reproduces that traffic pattern directly: each writer host
writes ``blocks_per_writer`` blocks of ``block_bytes``; per block, a
cross-rack transfer to a random replica and an in-rack transfer onward run
concurrently (approximating HDFS's cut-through pipelining).  Job completion
time is when every replica transfer finishes.  The paper notes TestDFSIO is
disk-bound on their servers and adds enterprise background traffic; the
harness in :mod:`repro.apps.experiment` does the same.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.apps.traffic import FlowFactory
from repro.units import megabytes

if TYPE_CHECKING:
    from repro.sim import Simulator
    from repro.switch.fabric import Fabric


@dataclass
class HdfsJobResult:
    """Outcome of one TestDFSIO-style write job."""

    writers: int
    blocks: int
    block_bytes: int
    completion_time: int = 0


class HdfsWriteJob:
    """A 3-way-replicated distributed write job across all fabric hosts."""

    def __init__(
        self,
        sim: "Simulator",
        fabric: "Fabric",
        *,
        flow_factory: FlowFactory,
        block_bytes: int = megabytes(8),
        blocks_per_writer: int = 1,
        stream: str = "hdfs",
        on_done: Callable[[HdfsJobResult], None] | None = None,
    ) -> None:
        if len(fabric.leaves) < 2:
            raise ValueError("HDFS placement model needs at least two racks")
        self.sim = sim
        self.fabric = fabric
        self.flow_factory = flow_factory
        self.block_bytes = block_bytes
        self.blocks_per_writer = blocks_per_writer
        self.on_done = on_done
        self._rng = sim.rng(stream)
        writers = sorted(fabric.hosts)
        self.result = HdfsJobResult(
            writers=len(writers),
            blocks=len(writers) * blocks_per_writer,
            block_bytes=block_bytes,
        )
        self._writers = writers
        self._outstanding = 0
        self._started_at = 0

    def start(self) -> None:
        """Launch every writer's block pipelines simultaneously."""
        self._started_at = self.sim.now
        for writer in self._writers:
            for _ in range(self.blocks_per_writer):
                self._write_block(writer)

    def _write_block(self, writer: int) -> None:
        replica1 = self._pick_off_rack(writer)
        replica2 = self._pick_same_rack(replica1)
        # Writer keeps the local copy "free"; two network transfers follow.
        for src, dst in ((writer, replica1), (replica1, replica2)):
            self._outstanding += 1
            flow = self.flow_factory(
                self.fabric.host(src),
                self.fabric.host(dst),
                self.block_bytes,
                lambda f: self._transfer_done(),
            )
            flow.start()

    def _pick_off_rack(self, writer: int) -> int:
        writer_leaf = self.fabric.leaf_of(writer)
        other_leaves = [
            leaf.leaf_id
            for leaf in self.fabric.leaves
            if leaf.leaf_id != writer_leaf
        ]
        leaf_id = other_leaves[int(self._rng.integers(len(other_leaves)))]
        hosts = self.fabric.hosts_under(leaf_id)
        return hosts[int(self._rng.integers(len(hosts)))]

    def _pick_same_rack(self, replica1: int) -> int:
        peers = [
            host
            for host in self.fabric.hosts_under(self.fabric.leaf_of(replica1))
            if host != replica1
        ]
        if not peers:
            return replica1  # single-host rack: degenerate but legal
        return peers[int(self._rng.integers(len(peers)))]

    def _transfer_done(self) -> None:
        self._outstanding -= 1
        if self._outstanding == 0:
            self.result.completion_time = self.sim.now - self._started_at
            if self.on_done is not None:
                self.on_done(self.result)

    @property
    def finished(self) -> bool:
        """Whether every replica transfer completed."""
        return self.result.completion_time > 0


__all__ = ["HdfsJobResult", "HdfsWriteJob"]
