"""Declarative experiment specifications (the sweep-able experiment API).

The original ``run_fct_experiment`` entry point (removed; see
:func:`repro.apps.execute_experiment` for the low-level path) grew a
13-kwarg signature whose callable arguments (``monitor_queue_ports``, flow
factories hidden inside :class:`SchemeSpec`) cannot cross a process
boundary or be hashed for caching.  This module replaces that surface with
value objects:

* :class:`ExperimentSpec` — a frozen, fully picklable description of one
  experiment point.  Schemes and workloads are referenced by registry
  *name*, topology by :class:`LeafSpineConfig`, and monitors by declarative
  :class:`QueueMonitorSpec` / :class:`ImbalanceMonitorSpec` values instead
  of callables.  ``spec.run()`` executes the point; ``spec.content_hash()``
  is a stable content address used by the :mod:`repro.runner` result cache.
* :class:`PointResult` — everything a benchmark needs from one run, with no
  live ``Simulator``/``Fabric`` attached, so it pickles cleanly back from a
  worker process and into the on-disk cache.

Because every random draw in a run comes from a named per-``Simulator``
stream and all flow hashing is process-stable, ``spec.run()`` is a pure
function of the spec: the same spec yields bit-identical results whether it
runs inline, on one worker, or on sixteen.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields, is_dataclass, replace
from time import perf_counter
from typing import TYPE_CHECKING

from repro.analysis.degradation import DegradationSummary
from repro.analysis.fct import FctSummary
from repro.analysis.monitors import ImbalanceSeries, QueueSeries
from repro.apps.experiment import ExperimentResult, execute_experiment, get_scheme
from repro.faults.events import FaultEvent, fault_window
from repro.obs.config import ObsSpec
from repro.obs.metrics import MetricsReport, collect_run_metrics
from repro.obs.timeline import Timeline
from repro.obs.trace import TraceLog
from repro.topology.leafspine import LeafSpineConfig
from repro.topology.multipod import MultiPodConfig
from repro.transport.tcp import FlowRecord, TcpParams
from repro.units import milliseconds, seconds
from repro.workloads import WORKLOADS

if TYPE_CHECKING:
    from repro.net.port import Port
    from repro.switch.fabric import Fabric


class UnknownWorkloadError(ValueError):
    """Raised when a workload name is not in ``repro.workloads.WORKLOADS``."""


def get_workload(name: str):
    """Look up a workload distribution by registry name."""
    dist = WORKLOADS.get(name)
    if dist is None:
        known = ", ".join(sorted(WORKLOADS))
        raise UnknownWorkloadError(
            f"unknown workload {name!r}; available workloads: {known}"
        )
    return dist


@dataclass(frozen=True)
class QueueMonitorSpec:
    """Declarative port selection for queue-occupancy sampling.

    Replaces the old ``monitor_queue_ports`` callable with a value that can
    be hashed and pickled.  ``tier`` picks which side of the fabric links to
    sample:

    * ``"spine"`` — spine→leaf downlink ports (Fig. 11c's hotspot view),
      optionally restricted to one ``spine`` and/or the ports facing one
      ``leaf``;
    * ``"leaf"`` — leaf→spine uplink ports, optionally restricted to one
      ``leaf`` and/or the ports facing one ``spine``;
    * ``"fabric"`` — every fabric port in both directions (Fig. 16).

    ``direction`` is implied by the tier (spine ports point down, leaf
    uplinks point up) and is validated for readability at call sites, e.g.
    ``QueueMonitorSpec(tier="spine", direction="down", spine=1, leaf=1)``.
    Failed ports are excluded, matching how the figures monitor surviving
    hotspot links.
    """

    tier: str = "spine"
    direction: str = "down"
    leaf: int | None = None
    spine: int | None = None
    interval: int = field(default_factory=lambda: milliseconds(1))

    _DIRECTIONS = {"spine": "down", "leaf": "up", "fabric": "both"}

    def __post_init__(self) -> None:
        expected = self._DIRECTIONS.get(self.tier)
        if expected is None:
            raise ValueError(
                f"tier must be one of {sorted(self._DIRECTIONS)}, got {self.tier!r}"
            )
        if self.direction != expected:
            raise ValueError(
                f"tier {self.tier!r} samples {expected!r} ports, "
                f"not {self.direction!r}"
            )
        if self.interval <= 0:
            raise ValueError("interval must be positive")

    def resolve(self, fabric: "Fabric") -> list["Port"]:
        """Materialize the selected ports on a built fabric."""
        ports: list[Port] = []
        if self.tier == "fabric":
            ports = [port for port in fabric.fabric_ports() if port.up]
        elif self.tier == "spine":
            spines = (
                fabric.spines
                if self.spine is None
                else [fabric.spines[self.spine]]
            )
            for spine in spines:
                if self.leaf is not None:
                    ports.extend(
                        spine.ports[i] for i in spine.ports_to_leaf(self.leaf)
                    )
                else:
                    ports.extend(port for port in spine.ports if port.up)
        else:  # leaf uplinks
            leaves = (
                fabric.leaves if self.leaf is None else [fabric.leaves[self.leaf]]
            )
            for leaf in leaves:
                for index, port in enumerate(leaf.uplinks):
                    if not port.up:
                        continue
                    if (
                        self.spine is not None
                        and leaf.uplink_spine[index].spine_id != self.spine
                    ):
                        continue
                    ports.append(port)
        if not ports:
            raise ValueError(f"{self!r} selected no live ports on this fabric")
        return ports


@dataclass(frozen=True)
class ImbalanceMonitorSpec:
    """Declarative Fig.-12-style throughput-imbalance monitor on one leaf.

    ``interval`` of ``None`` keeps the scaled-run default (1 ms windows
    instead of the paper's 10 ms).
    """

    leaf: int = 0
    interval: int | None = None

    def __post_init__(self) -> None:
        if self.interval is not None and self.interval <= 0:
            raise ValueError("interval must be positive")


def _canonical(value):
    """Reduce a spec value to plain JSON-able data, stably."""
    if is_dataclass(value) and not isinstance(value, type):
        payload = {
            f.name: _canonical(getattr(value, f.name)) for f in fields(value)
        }
        payload["__type__"] = type(value).__name__
        return payload
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(
        f"cannot canonicalize {type(value).__name__!r} for content hashing"
    )


@dataclass(frozen=True)
class ExperimentSpec:
    """A frozen, serializable description of one (scheme, workload, load) point.

    Every field is a value — names, numbers, tuples, frozen dataclasses —
    so a spec can be pickled to a worker process, compared for equality,
    and content-hashed for the result cache.  ``clients`` and
    ``failed_links`` accept any iterable and are normalized to tuples.
    """

    scheme: str
    workload: str
    load: float
    seed: int = 1
    num_flows: int = 400
    size_scale: float = 0.1
    clients: tuple[int, ...] | None = None
    config: LeafSpineConfig | MultiPodConfig | None = None
    tcp_params: TcpParams = field(default_factory=TcpParams)
    failed_links: tuple[tuple[int, int, int], ...] = ()
    #: Scheduled fault events (see :mod:`repro.faults`) — part of the spec,
    #: so fault scenarios sweep, cache, and hash like everything else.
    faults: tuple[FaultEvent, ...] = ()
    queue_monitor: QueueMonitorSpec | None = None
    imbalance_monitor: ImbalanceMonitorSpec | None = None
    deadline: int = field(default_factory=lambda: seconds(20))
    #: Observability knob (see :mod:`repro.obs`).  ``None`` — the default —
    #: disables tracing and is *content-hash-neutral*: a spec without
    #: ``obs`` hashes identically to one predating the field, so existing
    #: caches stay valid and tracing can never change what gets computed.
    obs: ObsSpec | None = None

    def __post_init__(self) -> None:
        if self.load <= 0:
            raise ValueError(f"load must be positive, got {self.load}")
        if self.num_flows < 1:
            raise ValueError(f"need at least one flow, got {self.num_flows}")
        if self.clients is not None:
            object.__setattr__(self, "clients", tuple(self.clients))
        object.__setattr__(
            self,
            "failed_links",
            tuple(tuple(link) for link in self.failed_links),
        )
        object.__setattr__(self, "faults", tuple(self.faults))
        for event in self.faults:
            if not isinstance(event, FaultEvent):
                raise TypeError(
                    f"faults must be FaultEvent values, got {event!r}; "
                    "parse CLI strings with repro.faults.parse_fault first"
                )

    # -- identity -----------------------------------------------------------

    def content_hash(self) -> str:
        """Stable content address of this spec + the package version.

        Identical specs hash identically across processes and sessions;
        any field change — or a new ``repro`` release, which may change
        simulation behaviour — changes the hash, which is what keys the
        :mod:`repro.runner` on-disk cache.
        """
        from repro import __version__

        payload = _canonical(self)
        if self.obs is None:
            # Hash-neutrality: tracing off must hash like the field never
            # existed, so pre-obs cache keys stay reachable.
            payload.pop("obs")
        else:
            # Same convention one level down: an unset timeline hashes like
            # the field never existed, and trace_path never participates —
            # it is an output sink, not an input (see ObsSpec docstring).
            payload["obs"].pop("trace_path")
            if self.obs.timeline is None:
                payload["obs"].pop("timeline")
        payload["__repro_version__"] = __version__
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    def label(self) -> str:
        """Short human-readable point label for progress lines and tables."""
        return (
            f"{self.scheme} {self.workload} load={self.load:g} seed={self.seed}"
        )

    def with_(self, **changes) -> "ExperimentSpec":
        """A copy with the given fields replaced (sweep-building helper)."""
        return replace(self, **changes)

    # -- execution ----------------------------------------------------------

    def run_live(self) -> ExperimentResult:
        """Execute and return the live result (simulator, fabric, monitors).

        For callers that need to poke at CONGA tables or port counters
        afterwards.  Not picklable; use :meth:`run` for anything that
        crosses a process boundary.
        """
        return execute_experiment(
            get_scheme(self.scheme),
            get_workload(self.workload),
            self.load,
            config=self.config,
            seed=self.seed,
            num_flows=self.num_flows,
            size_scale=self.size_scale,
            clients=list(self.clients) if self.clients is not None else None,
            tcp_params=self.tcp_params,
            failed_links=[list(link) for link in self.failed_links],
            faults=self.faults,
            monitor_imbalance_leaf=(
                self.imbalance_monitor.leaf if self.imbalance_monitor else None
            ),
            imbalance_interval=(
                self.imbalance_monitor.interval if self.imbalance_monitor else None
            ),
            monitor_queue_ports=(
                self.queue_monitor.resolve if self.queue_monitor else None
            ),
            queue_interval=(
                self.queue_monitor.interval if self.queue_monitor else None
            ),
            deadline=self.deadline,
            obs=self.obs,
        )

    def run(self) -> "PointResult":
        """Execute this point and return a picklable :class:`PointResult`."""
        started = perf_counter()  # repro-lint: ignore[D101] -- wall_seconds is reporting only
        live = self.run_live()
        wall = perf_counter() - started  # repro-lint: ignore[D101] -- reporting only
        return PointResult.from_live(self, live, wall_seconds=wall)


@dataclass(frozen=True)
class PointResult:
    """Everything a benchmark needs from one run — and nothing live.

    Unlike :class:`ExperimentResult` this carries no ``Simulator`` or
    ``Fabric``, so it crosses the worker pipe and lives in the on-disk
    cache.  Monitor outputs come as frozen series snapshots; fabric-side
    aggregates that benchmarks read (drops, peak queue depth) are captured
    as scalars before the fabric is dropped.
    """

    spec: ExperimentSpec
    summary: FctSummary | None
    records: tuple[FlowRecord, ...]
    arrivals: int
    completed: int
    fabric_drops: int
    fabric_max_queue_bytes: int
    end_time: int
    events_executed: int
    wall_seconds: float
    queue_series: QueueSeries | None = None
    imbalance_series: ImbalanceSeries | None = None
    retransmissions: int = 0
    timeouts: int = 0
    #: Peak per-tier capacity asymmetry the run's fault schedule produced,
    #: as sorted (tier, fraction) pairs from
    #: :meth:`repro.faults.FaultInjector.tier_asymmetry`; empty for
    #: fault-free runs.
    tier_asymmetry: tuple[tuple[str, float], ...] = ()
    from_cache: bool = False
    #: Frozen metrics snapshot of the run (kernel/port/tcp/... counters
    #: under dotted names); always populated for fresh runs.
    metrics: MetricsReport | None = None
    #: Trace snapshot when the spec carried an :class:`ObsSpec`; None for
    #: untraced runs.
    trace: TraceLog | None = None
    #: Sim-time telemetry snapshot when the spec's ``ObsSpec`` carried a
    #: :class:`~repro.obs.timeline.TimelineSpec`; None otherwise.
    timeline: Timeline | None = None

    @staticmethod
    def from_live(
        spec: ExperimentSpec,
        live: ExperimentResult,
        *,
        wall_seconds: float,
    ) -> "PointResult":
        """Strip a live :class:`ExperimentResult` down to picklable values."""
        max_queue = max(
            (p.queue.stats.max_bytes for p in live.fabric.fabric_ports()),
            default=0,
        )
        return PointResult(
            spec=spec,
            summary=FctSummary.from_records(live.records) if live.records else None,
            records=tuple(live.records),
            arrivals=live.arrivals,
            completed=live.completed,
            fabric_drops=live.fabric.total_fabric_drops(),
            fabric_max_queue_bytes=max_queue,
            end_time=live.sim.now,
            events_executed=live.sim.events_executed,
            wall_seconds=wall_seconds,
            queue_series=live.queues.snapshot() if live.queues else None,
            imbalance_series=live.imbalance.snapshot() if live.imbalance else None,
            retransmissions=live.retransmissions,
            timeouts=live.timeouts,
            tier_asymmetry=(
                live.injector.tier_asymmetry()
                if live.injector is not None
                else ()
            ),
            metrics=collect_run_metrics(live),
            trace=(
                live.sim.tracer.snapshot() if live.sim.tracer is not None else None
            ),
            timeline=live.timeline,
        )

    @property
    def scheme(self) -> str:
        """Scheme name (mirrors :class:`ExperimentResult`)."""
        return self.spec.scheme

    @property
    def workload(self) -> str:
        """Workload name (mirrors :class:`ExperimentResult`)."""
        return self.spec.workload

    @property
    def load(self) -> float:
        """Offered load (mirrors :class:`ExperimentResult`)."""
        return self.spec.load

    @property
    def unfinished(self) -> int:
        """Flows that arrived but did not finish before the deadline."""
        return self.arrivals - self.completed

    @property
    def events_per_sec(self) -> float:
        """Simulator event throughput of this point's execution."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.events_executed / self.wall_seconds

    def degradation(
        self,
        *,
        bin_width: int | None = None,
        recovery_fraction: float = 0.9,
    ) -> DegradationSummary:
        """Degradation metrics across this point's fault window.

        Brackets the degraded interval with
        :func:`repro.faults.fault_window` over the spec's fault schedule
        and summarizes goodput before/during/after plus post-restore
        recovery time (see :class:`repro.analysis.DegradationSummary`).
        Raises when the spec has no degrading faults — there is no window
        to analyze.
        """
        window = fault_window(self.spec.faults)
        if window is None:
            raise ValueError(
                f"spec {self.spec.label()!r} has no degrading faults"
            )
        start, end = window
        kwargs = {} if bin_width is None else {"bin_width": bin_width}
        return DegradationSummary.from_records(
            self.records,
            window_start=start,
            window_end=end,
            end_time=self.end_time,
            retransmissions=self.retransmissions,
            timeouts=self.timeouts,
            tier_asymmetry=self.tier_asymmetry,
            recovery_fraction=recovery_fraction,
            **kwargs,
        )


__all__ = [
    "ExperimentSpec",
    "ImbalanceMonitorSpec",
    "PointResult",
    "QueueMonitorSpec",
    "UnknownWorkloadError",
    "get_workload",
]
