"""Discounting Rate Estimator (paper §3.2).

The DRE measures the load of a link with a single register ``X``:
``X += packet_bytes`` on every transmission, and every ``T_dre`` the register
decays multiplicatively, ``X ← X · (1 − α)``.  In steady state
``X ≈ R · τ`` where ``R`` is the traffic rate and ``τ = T_dre / α``, so
``X / (C · τ)`` estimates link utilization.  The congestion metric exported
to CONGA is that utilization quantized to ``Q`` bits.

The decay is implemented lazily: instead of a periodic event per DRE (there
is one DRE per fabric port, so eager timers would dominate the event heap),
the register applies all decays elapsed since its last touch whenever it is
read or incremented.  This is numerically identical to the hardware's
periodic decay at each ``T_dre`` boundary.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.params import CongaParams, DEFAULT_PARAMS
from repro.obs.events import DreSampled

if TYPE_CHECKING:
    from repro.sim import Simulator

#: Largest ``elapsed`` served from the precomputed decay table.  A busy
#: link touches its DRE every few packets, so elapsed tick counts beyond a
#: few dozen only occur after idle gaps, where one pow is irrelevant.
_DECAY_TABLE_SIZE = 256

#: Shared decay tables keyed by α.  Every port's DRE in a fabric uses the
#: same parameter block, so one table serves all of them — a fabric with
#: hundreds of ports holds one 256-entry tuple instead of one per port, and
#: the per-packet lazy decay in every estimator indexes the same cache-hot
#: row.
_DECAY_TABLES: dict[float, tuple[float, ...]] = {}


def _decay_table(alpha: float) -> tuple[float, ...]:
    """The shared ``(1 - α) ** k`` table for ``alpha`` (see _DECAY_TABLES).

    Entry k is literally ``(1 - α) ** k`` evaluated by the same float
    operation the direct formula uses, so table and formula agree bit for
    bit (asserted by tests/test_core.py).
    """
    table = _DECAY_TABLES.get(alpha)
    if table is None:
        base = 1.0 - alpha
        table = tuple(base ** k for k in range(_DECAY_TABLE_SIZE))
        _DECAY_TABLES[alpha] = table
    return table


class DRE:
    """A discounting rate estimator for one link direction.

    Parameters
    ----------
    sim:
        Simulator supplying the clock.
    link_rate_bps:
        Line rate ``C`` of the measured link.
    params:
        CONGA parameter block (provides T_dre, τ, α, Q).
    """

    __slots__ = (
        "sim",
        "link_rate_bps",
        "params",
        "name",
        "_register",
        "_last_decay_tick",
        "_full_register",
        "_period",
        "_decay_base",
        "_decay_table",
        "_metric_levels",
        "_max_metric",
    )

    def __init__(
        self,
        sim: "Simulator",
        link_rate_bps: int,
        params: CongaParams = DEFAULT_PARAMS,
        name: str = "",
    ) -> None:
        if link_rate_bps <= 0:
            raise ValueError(f"link rate must be positive, got {link_rate_bps}")
        self.sim = sim
        self.link_rate_bps = link_rate_bps
        self.params = params
        #: Trace label — the measured port's name when attached to one.
        self.name = name
        self._register = 0.0
        self._last_decay_tick = 0  # index of the last applied T_dre boundary
        # X_full corresponds to a 100%-utilized link: C * tau (in bytes).
        self._full_register = (
            link_rate_bps * params.dre_time_constant / (8 * 1_000_000_000)
        )
        self._period = params.dre_period
        # Decay factors for small elapsed tick counts, precomputed (and
        # shared across all estimators with the same α) so the per-packet
        # lazy decay is a table lookup instead of a float pow.
        self._decay_base = 1.0 - params.alpha
        self._decay_table = _decay_table(params.alpha)
        # Quantization constants cached off the (frozen) parameter block so
        # the fused per-packet path below avoids attribute chains.
        self._metric_levels = params.metric_levels
        self._max_metric = params.max_metric

    # -- register maintenance -------------------------------------------------

    def _apply_decay(self) -> None:
        tick = self.sim.now // self._period
        elapsed = tick - self._last_decay_tick
        if elapsed > 0:
            self._last_decay_tick = tick
            if elapsed < _DECAY_TABLE_SIZE:
                self._register *= self._decay_table[elapsed]
            else:
                self._register *= self._decay_base ** elapsed

    def on_transmit(self, size_bytes: int) -> None:
        """Account for ``size_bytes`` sent on the link (increment ``X``)."""
        self._apply_decay()
        self._register += size_bytes

    def measure(self, packet) -> None:
        """Fused per-packet egress hook: decay + increment + CE stamp.

        Semantically identical to ``on_transmit(packet.size)`` followed by
        ``header.ce = max(header.ce, metric())`` (the switch-egress sequence
        of §3.2/§3.3 step 2), collapsed into one call so the hot path pays a
        single decay application and no attribute-chain re-reads.  Bound
        directly into ``port.on_transmit`` by the leaf and spine switches.
        """
        tick = self.sim._now // self._period
        elapsed = tick - self._last_decay_tick
        register = self._register
        if elapsed > 0:
            self._last_decay_tick = tick
            if elapsed < _DECAY_TABLE_SIZE:
                register *= self._decay_table[elapsed]
            else:
                register *= self._decay_base ** elapsed
        register += packet.size
        self._register = register
        header = packet.overlay
        if header is not None:
            utilization = register / self._full_register
            level = int(utilization * self._metric_levels)
            metric = self._max_metric if level > self._max_metric else level
            tracer = self.sim.tracer
            if tracer is not None and tracer.dre:
                tracer.emit(
                    DreSampled(  # repro-lint: ignore[E302] -- tracer-gated: allocates only when dre tracing is enabled, never on the bare hot path (perf bench enforces <3% overhead)
                        time=self.sim.now,
                        link=self.name,
                        register=register,
                        utilization=utilization,
                        metric=metric,
                    )
                )
            if metric > header.ce:
                header.ce = metric

    # -- readings --------------------------------------------------------------

    @property
    def register(self) -> float:
        """Current (decayed) register value ``X`` in bytes."""
        self._apply_decay()
        return self._register

    def utilization(self) -> float:
        """Estimated link utilization ``X / (C · τ)``; may exceed 1 in bursts."""
        return self.register / self._full_register

    def metric(self) -> int:
        """Quantized congestion metric in ``[0, 2**Q - 1]`` (§3.2)."""
        utilization = self.utilization()
        level = int(utilization * self.params.metric_levels)
        metric = min(level, self.params.max_metric)
        tracer = self.sim.tracer
        if tracer is not None and tracer.dre:
            tracer.emit(
                DreSampled(
                    time=self.sim.now,
                    link=self.name,
                    register=self._register,
                    utilization=utilization,
                    metric=metric,
                )
            )
        return metric

    def peek(self) -> float:
        """Side-effect-free register read for telemetry sampling.

        Applies pending decay *arithmetically* without writing back and
        without emitting a trace event.  The timeline collector must use
        this instead of :attr:`register`: committing the decay here would
        split one future decay multiply into two (``(X·b^e1)·b^e2`` is not
        bitwise ``X·b^(e1+e2)``), changing low-order register bits and
        breaking the "bit-identical with the collector on or off" contract.
        """
        tick = self.sim.now // self._period
        elapsed = tick - self._last_decay_tick
        register = self._register
        if elapsed > 0:
            if elapsed < _DECAY_TABLE_SIZE:
                register *= self._decay_table[elapsed]
            else:
                register *= self._decay_base ** elapsed
        return register

    def peek_utilization(self) -> float:
        """Side-effect-free ``X / (C · τ)`` (see :meth:`peek`)."""
        return self.peek() / self._full_register

    def set_link_rate(self, link_rate_bps: int) -> None:
        """Retarget the estimator to a new line rate ``C`` (link degradation).

        Pending decay is applied at the old rate first, then the
        full-register target ``C · τ`` is recomputed, so utilization and the
        exported metric immediately reflect congestion relative to the
        *current* capacity — which is how a degraded link shows up as more
        congested to CONGA while ECMP remains blind to it.
        """
        if link_rate_bps <= 0:
            raise ValueError(f"link rate must be positive, got {link_rate_bps}")
        self._apply_decay()
        self.link_rate_bps = link_rate_bps
        self._full_register = (
            link_rate_bps * self.params.dre_time_constant / (8 * 1_000_000_000)
        )

    def reset(self) -> None:
        """Clear the register (used when re-configuring a link)."""
        self._register = 0.0
        self._last_decay_tick = self.sim.now // self.params.dre_period


__all__ = ["DRE"]
