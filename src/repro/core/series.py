"""Bounded sample series with deterministic stride decimation.

Long simulations sample queue occupancies millions of times; storing every
sample grows memory without bound and the queue CDFs of Fig. 11(c)/Fig. 16
do not need nanosecond-dense data.  :class:`DecimatedSeries` keeps at most
``limit`` uniformly spaced samples: it retains every ``stride``-th offered
value, and whenever the retained buffer fills it drops every other retained
sample and doubles the stride.  The retained set is therefore always
"sample 0, s, 2s, ..." for the current stride ``s`` — a deterministic
function of the offer sequence alone, so decimation never perturbs
simulation results and two identical runs decimate identically.

Percentiles computed from the decimated series converge to the full-series
percentiles because the retained samples are an unbiased uniform-in-time
subsample (no reservoir randomness, no recency bias).
"""

from __future__ import annotations

from typing import Generic, Iterable, Iterator, TypeVar, overload

T = TypeVar("T")

#: Default retained-sample bound; 8k integers ≈ a few hundred KB per port
#: worst case, while a percentile over 4–8k uniform samples is stable to
#: well under the plot resolution of the paper's CDF figures.
DEFAULT_SERIES_LIMIT = 8192


class DecimatedSeries(Generic[T]):
    """A list-like, bounded, stride-decimated series of samples.

    Supports ``append``, iteration, indexing, ``len``, and equality against
    plain lists/tuples, so existing consumers that treated the raw sample
    list as a sequence keep working unchanged.
    """

    __slots__ = ("limit", "stride", "offered", "_next_keep", "_values")

    def __init__(
        self, limit: int = DEFAULT_SERIES_LIMIT, values: Iterable[T] | None = None
    ) -> None:
        if limit < 2:
            raise ValueError(f"limit must be at least 2, got {limit}")
        self.limit = limit
        self.stride = 1
        self.offered = 0
        self._next_keep = 0
        self._values: list[T] = []
        for value in values or ():
            self.append(value)

    def append(self, value: T) -> None:
        """Offer one sample; it is retained iff it lands on the stride."""
        offered = self.offered
        self.offered = offered + 1
        if offered != self._next_keep:
            return
        values = self._values
        values.append(value)
        self._next_keep = offered + self.stride
        if len(values) >= self.limit:
            del values[1::2]  # keep samples 0, 2s, 4s, ... of the old stride
            self.stride *= 2
            self._next_keep = len(values) * self.stride

    @property
    def values(self) -> list[T]:
        """A copy of the retained samples, oldest first."""
        return list(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[T]:
        return iter(self._values)

    @overload
    def __getitem__(self, index: int) -> T: ...

    @overload
    def __getitem__(self, index: slice) -> list[T]: ...

    def __getitem__(self, index: int | slice) -> T | list[T]:
        return self._values[index]

    def __bool__(self) -> bool:
        return bool(self._values)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, DecimatedSeries):
            return self._values == other._values
        if isinstance(other, (list, tuple)):
            return self._values == list(other)
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DecimatedSeries({len(self._values)}/{self.limit} kept, "
            f"stride={self.stride}, offered={self.offered})"
        )


__all__ = ["DEFAULT_SERIES_LIMIT", "DecimatedSeries"]
