"""CONGA core machinery: DRE, flowlet table, congestion tables, parameters."""

from repro.core.dre import DRE
from repro.core.flowlet import FlowletEntry, FlowletTable
from repro.core.params import CONGA_FLOW_PARAMS, DEFAULT_PARAMS, CongaParams
from repro.core.tables import CongestionFromLeafTable, CongestionToLeafTable

__all__ = [
    "CONGA_FLOW_PARAMS",
    "CongestionFromLeafTable",
    "CongestionToLeafTable",
    "CongaParams",
    "DEFAULT_PARAMS",
    "DRE",
    "FlowletEntry",
    "FlowletTable",
]
