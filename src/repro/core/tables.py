"""CONGA congestion state tables (paper §3.3).

Two tables implement the leaf-to-leaf feedback loop:

* the **Congestion-To-Leaf** table at the *source* leaf holds, per
  destination leaf and per uplink (LBTag), the most recent remote path
  metric fed back by that destination;
* the **Congestion-From-Leaf** table at the *destination* leaf holds, per
  source leaf and per LBTag, the freshest CE value seen on arriving packets
  while it waits for a reverse-direction packet to piggyback on.

Feedback selection is round-robin over LBTags with preference for metrics
whose value changed since they were last fed back (§3.3 step 4).  Metrics in
the Congestion-To-Leaf table age: an entry not refreshed within
``metric_age_time`` decays linearly to zero over one further aging period,
so a path that once looked congested is eventually probed again.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.params import CongaParams, DEFAULT_PARAMS
from repro.obs.events import CongaTableAged, CongaTableUpdated

if TYPE_CHECKING:
    from repro.sim import Simulator


@dataclass(slots=True)
class _RemoteMetric:
    value: int = 0
    updated_at: int = -1
    valid: bool = False


class CongestionToLeafTable:
    """Remote path congestion, indexed [destination leaf][uplink LBTag]."""

    def __init__(
        self,
        sim: "Simulator",
        num_uplinks: int,
        params: CongaParams = DEFAULT_PARAMS,
        owner: int = -1,
    ) -> None:
        if num_uplinks <= 0:
            raise ValueError(f"need at least one uplink, got {num_uplinks}")
        self.sim = sim
        self.num_uplinks = num_uplinks
        self.params = params
        #: Trace label — the leaf this table lives on (-1 when standalone).
        self.owner = owner
        self._rows: dict[int, list[_RemoteMetric]] = {}

    def _row(self, dst_leaf: int) -> list[_RemoteMetric]:
        row = self._rows.get(dst_leaf)
        if row is None:
            row = [_RemoteMetric() for _ in range(self.num_uplinks)]
            self._rows[dst_leaf] = row
        return row

    def update(self, dst_leaf: int, lbtag: int, metric: int) -> None:
        """Record feedback ``metric`` for path ``lbtag`` toward ``dst_leaf``."""
        if not 0 <= lbtag < self.num_uplinks:
            raise ValueError(f"LBTag {lbtag} out of range 0..{self.num_uplinks - 1}")
        cell = self._row(dst_leaf)[lbtag]
        cell.value = metric
        cell.updated_at = self.sim.now
        cell.valid = True
        tracer = self.sim.tracer
        if tracer is not None and tracer.table:
            tracer.emit(
                CongaTableUpdated(
                    time=self.sim.now,
                    leaf=self.owner,
                    dst_leaf=dst_leaf,
                    lbtag=lbtag,
                    metric=metric,
                )
            )

    def metric(self, dst_leaf: int, lbtag: int) -> int:
        """Aged remote metric for (``dst_leaf``, ``lbtag``); 0 if unknown.

        Unknown paths read as zero congestion, which makes CONGA explore
        them — the same optimistic initialization the ASIC uses.
        """
        cell = self._row(dst_leaf)[lbtag]
        if not cell.valid:
            return 0
        age = self.sim.now - cell.updated_at
        age_time = self.params.metric_age_time
        if age <= age_time:
            return cell.value
        # Linear decay to zero over one further aging period (§3.3 says the
        # metric "gradually decays to zero"; the exact ramp is unspecified).
        overshoot = age - age_time
        if overshoot >= age_time:
            aged = 0
        else:
            aged = int(cell.value * (1.0 - overshoot / age_time))
        tracer = self.sim.tracer
        if tracer is not None and tracer.table:
            tracer.emit(
                CongaTableAged(
                    time=self.sim.now,
                    leaf=self.owner,
                    dst_leaf=dst_leaf,
                    lbtag=lbtag,
                    stored=cell.value,
                    aged=aged,
                )
            )
        return aged

    def age_of(self, dst_leaf: int, lbtag: int) -> int | None:
        """Nanoseconds since feedback last refreshed (``dst_leaf``, ``lbtag``).

        ``None`` for a never-updated cell — a path CONGA is still probing
        optimistically, which staleness-aware schemes (``caft``) must not
        penalize the way they penalize a path whose feedback *stopped*.
        """
        cell = self._row(dst_leaf)[lbtag]
        if not cell.valid:
            return None
        return self.sim.now - cell.updated_at

    def metrics_toward(self, dst_leaf: int) -> list[int]:
        """All aged uplink metrics toward ``dst_leaf`` as a list by LBTag."""
        return [self.metric(dst_leaf, tag) for tag in range(self.num_uplinks)]


@dataclass(slots=True)
class _PendingMetric:
    value: int = 0
    valid: bool = False
    changed: bool = False


class CongestionFromLeafTable:
    """Per-source-leaf CE values awaiting piggybacked feedback."""

    def __init__(self, num_lbtags: int) -> None:
        if num_lbtags <= 0:
            raise ValueError(f"need at least one LBTag, got {num_lbtags}")
        self.num_lbtags = num_lbtags
        self._rows: dict[int, list[_PendingMetric]] = {}
        self._rr_pointer: dict[int, int] = {}
        # Per-row changed/valid cell counts, so the per-encapsulation
        # feedback selection can skip whole scan passes (the steady state is
        # "nothing changed, everything valid", where selection collapses to
        # the round-robin pointer itself).
        self._changed_cells: dict[int, int] = {}
        self._valid_cells: dict[int, int] = {}

    def _row(self, src_leaf: int) -> list[_PendingMetric]:
        row = self._rows.get(src_leaf)
        if row is None:
            row = [_PendingMetric() for _ in range(self.num_lbtags)]
            self._rows[src_leaf] = row
        return row

    def record(self, src_leaf: int, lbtag: int, ce: int) -> None:
        """Store the CE value carried by a packet from ``src_leaf``."""
        if not 0 <= lbtag < self.num_lbtags:
            raise ValueError(f"LBTag {lbtag} out of range 0..{self.num_lbtags - 1}")
        cell = self._row(src_leaf)[lbtag]
        if (not cell.valid or cell.value != ce) and not cell.changed:
            cell.changed = True
            self._changed_cells[src_leaf] = self._changed_cells.get(src_leaf, 0) + 1
        if not cell.valid:
            cell.valid = True
            self._valid_cells[src_leaf] = self._valid_cells.get(src_leaf, 0) + 1
        cell.value = ce

    def select_feedback(self, src_leaf: int) -> tuple[int, int] | None:
        """Pick one (lbtag, metric) to piggyback toward ``src_leaf``.

        Round-robin over LBTags, favoring metrics that changed since they
        were last fed back (§3.3 step 4).  Returns None when nothing has
        been recorded yet for that leaf.
        """
        row = self._rows.get(src_leaf)
        if row is None:
            return None
        n = self.num_lbtags
        start = self._rr_pointer.get(src_leaf, 0)
        chosen = None
        # First pass: prefer changed metrics, scanning round-robin order.
        # (changed implies valid — only record() sets either.)  Skipped
        # entirely when the row's changed-cell count is zero.
        if self._changed_cells.get(src_leaf, 0):
            for index in range(start, n):
                if row[index].changed:
                    chosen = index
                    break
            else:
                for index in range(start):
                    if row[index].changed:
                        chosen = index
                        break
        if chosen is None:
            valid = self._valid_cells.get(src_leaf, 0)
            if valid == n:
                # Every cell valid: the first round-robin probe wins.
                chosen = start
            elif valid:
                for index in range(start, n):
                    if row[index].valid:
                        chosen = index
                        break
                else:
                    for index in range(start):
                        if row[index].valid:
                            chosen = index
                            break
        if chosen is None:
            return None
        self._rr_pointer[src_leaf] = (chosen + 1) % n
        cell = row[chosen]
        if cell.changed:
            cell.changed = False
            self._changed_cells[src_leaf] -= 1
        return chosen, cell.value

    def leaves_owed_feedback(self) -> list[int]:
        """Source leaves with changed metrics not yet fed back.

        Used by the explicit-feedback option (§3.3 notes the designers
        *could* generate explicit feedback packets): when no reverse
        traffic exists to piggyback on, these leaves' senders are flying
        blind and a control packet is warranted.
        """
        return [
            src_leaf
            for src_leaf in sorted(self._rows)
            if self._changed_cells.get(src_leaf, 0)
        ]


__all__ = ["CongestionFromLeafTable", "CongestionToLeafTable"]
