"""CONGA configuration parameters (paper §3.6).

The paper's defaults are Q = 3 quantization bits, DRE time constant
τ = 160 µs, and flowlet inactivity timeout T_fl = 500 µs; CONGA-Flow uses
T_fl = 13 ms (the maximum path latency in the authors' testbed), which makes
one decision per flow while still using congestion metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.units import microseconds, milliseconds


@dataclass(frozen=True)
class CongaParams:
    """Tunable parameters of the CONGA mechanism.

    Attributes
    ----------
    quantization_bits:
        Q — congestion metrics are quantized to ``2**Q`` levels (§3.1, §3.6).
    dre_time_constant:
        τ = T_dre / α, the DRE low-pass filter time constant in ticks (§3.2).
    dre_period:
        T_dre — interval between multiplicative decays, in ticks.  α is
        derived as ``dre_period / dre_time_constant``.
    flowlet_timeout:
        T_fl — flowlet inactivity gap, in ticks (§3.4).
    flowlet_table_size:
        Number of flowlet table entries (64K in the ASIC).
    metric_age_time:
        A Congestion-To-Leaf entry not refreshed for this long decays toward
        zero so stale congestion is eventually re-probed (§3.3).
    """

    quantization_bits: int = 3
    dre_time_constant: int = microseconds(160)
    dre_period: int = microseconds(20)
    flowlet_timeout: int = microseconds(500)
    flowlet_table_size: int = 65_536
    metric_age_time: int = milliseconds(10)

    def __post_init__(self) -> None:
        if not 1 <= self.quantization_bits <= 8:
            raise ValueError(f"Q out of range: {self.quantization_bits}")
        if self.dre_period <= 0 or self.dre_time_constant <= 0:
            raise ValueError("DRE timing parameters must be positive")
        if self.dre_period > self.dre_time_constant:
            raise ValueError("dre_period must not exceed the time constant")
        if self.flowlet_timeout <= 0:
            raise ValueError("flowlet timeout must be positive")
        if self.flowlet_table_size <= 0:
            raise ValueError("flowlet table size must be positive")

    @property
    def alpha(self) -> float:
        """DRE multiplicative decay factor α = T_dre / τ."""
        return self.dre_period / self.dre_time_constant

    @property
    def metric_levels(self) -> int:
        """Number of quantized congestion levels, ``2**Q``."""
        return 1 << self.quantization_bits

    @property
    def max_metric(self) -> int:
        """Largest representable congestion metric, ``2**Q - 1``."""
        return self.metric_levels - 1

    def with_flowlet_timeout(self, timeout: int) -> "CongaParams":
        """Return a copy with a different flowlet inactivity timeout."""
        return replace(self, flowlet_timeout=timeout)


#: Paper defaults (§3.6).
DEFAULT_PARAMS = CongaParams()

#: CONGA-Flow: one decision per flow (T_fl larger than any path latency, §5).
CONGA_FLOW_PARAMS = CongaParams(flowlet_timeout=milliseconds(13))


__all__ = ["CONGA_FLOW_PARAMS", "CongaParams", "DEFAULT_PARAMS"]
