"""Flowlet detection table (paper §3.4).

Flowlets are bursts of packets of the same flow separated by gaps larger than
the inactivity timeout ``T_fl``.  The ASIC tracks them in a hash table whose
entries are just ``{port, valid bit, age bit}``: every arriving packet clears
the age bit, and a scan timer running every ``T_fl`` sets age bits and
expires entries whose bit is already set, so detected gaps fall between
``T_fl`` and ``2·T_fl``.

This model implements the identical semantics *lazily*: scans happen at
clock multiples of ``T_fl``, so an entry last touched at ``t0`` has its age
bit set at the first boundary after ``t0`` and expires at the second.  At
lookup time ``t`` the entry is therefore invalid iff two or more boundaries
passed, i.e. ``t // T_fl - t0 // T_fl >= 2``.  Evaluating that on demand is
bit-identical to the hardware sweep without keeping a timer on the event
heap for every leaf switch.

Flows hash into the table by 5-tuple; hash collisions are allowed (two flows
sharing an entry merely lose a rebalancing opportunity — Remark 1 in the
paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.params import CongaParams, DEFAULT_PARAMS
from repro.net.hashing import stable_hash

if TYPE_CHECKING:
    from repro.sim import Simulator

#: A flow's identity for hashing purposes.  Transport code passes
#: (src, dst, src_port, dst_port, proto)-style tuples; subflow IDs may be
#: strings, so components are int-or-str.
FiveTuple = tuple[int | str, ...]


@dataclass(slots=True)
class FlowletEntry:
    """One flowlet-table slot: cached uplink, valid bit, last-touch time."""

    port: int = -1
    valid: bool = False
    last_seen: int = -1


class FlowletTable:
    """Hash table of active flowlets with T_fl..2·T_fl gap detection.

    The caller drives it as the leaf ASIC does:

    1. ``entry = table.lookup(five_tuple)``
    2. if ``entry.valid``: forward on ``entry.port``;
    3. else: make a new load balancing decision, then
       ``table.install(entry, port)``.

    Even when an entry has expired, ``entry.port`` still holds the previous
    flowlet's uplink: §3.5 gives that port preference on ties so a flow only
    moves when a strictly better path exists.
    """

    def __init__(self, sim: "Simulator", params: CongaParams = DEFAULT_PARAMS) -> None:
        self.sim = sim
        self.params = params
        self.size = params.flowlet_table_size
        # Slots materialize on first touch.  The hash-slot semantics are
        # identical to a dense 2**16-entry array (collisions included: two
        # flows mapping to one slot share one entry), but a leaf only ever
        # touches as many slots as it has distinct active 5-tuple hashes, so
        # the sparse dict avoids allocating 65,536 entry objects per leaf up
        # front — a large setup-time and resident-memory win at fabric scale.
        self._entries: dict[int, FlowletEntry] = {}
        self.new_flowlets = 0
        self.expired_flowlets = 0

    def _slot(self, five_tuple: FiveTuple) -> int:
        return stable_hash(five_tuple, salt=0x5F10) % self.size

    def _expired(self, entry: FlowletEntry) -> bool:
        period = self.params.flowlet_timeout
        return self.sim.now // period - entry.last_seen // period >= 2

    def lookup(self, five_tuple: FiveTuple) -> FlowletEntry:
        """Return the entry for ``five_tuple``, applying lazy expiry.

        A valid returned entry means the packet belongs to an active flowlet
        and the caller must reuse ``entry.port``; the lookup refreshes the
        entry's activity timestamp in that case.
        """
        slot = stable_hash(five_tuple, salt=0x5F10) % self.size
        entry = self._entries.get(slot)
        if entry is None:
            entry = FlowletEntry()
            self._entries[slot] = entry
        if entry.valid and self._expired(entry):
            entry.valid = False
            self.expired_flowlets += 1
        if entry.valid:
            entry.last_seen = self.sim.now
        return entry

    def install(self, entry: FlowletEntry, port: int) -> None:
        """Cache a fresh load balancing decision in ``entry``."""
        entry.port = port
        entry.valid = True
        entry.last_seen = self.sim.now
        self.new_flowlets += 1

    @property
    def active_flowlets(self) -> int:
        """Number of currently valid (non-expired) entries."""
        return sum(
            1
            for entry in self._entries.values()  # repro-lint: ignore[D104] -- order-independent count
            if entry.valid and not self._expired(entry)
        )


__all__ = ["FiveTuple", "FlowletEntry", "FlowletTable"]
