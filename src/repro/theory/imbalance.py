"""Stochastic traffic-imbalance model (paper §6.2, Theorem 2).

Theorem 2: flows arrive Poisson(λ) with i.i.d. sizes S and are assigned to
one of *n* links uniformly at random (randomized per-flow load balancing,
i.e. ECMP in expectation).  Define the traffic imbalance at time *t*

    χ(t) = (max_k A_k(t) − min_k A_k(t)) / (λ E[S] t / n),

the max–min spread of cumulative per-link traffic normalized by the
expected per-link traffic.  Then E[χ(t)] ≤ 1/sqrt(λ_e t) + O(1/t) with the
*effective arrival rate*

    λ_e = λ / (8 n log n (1 + (σ_S / E[S])²)).

The coefficient-of-variation term is the punchline: heavy workloads (large
CoV, like data-mining) balance fundamentally worse under randomized
per-flow assignment — which is when flowlets (which chop S into smaller
pieces, cutting the CoV) pay off.

:func:`simulate_imbalance` estimates E[χ(t)] by Monte-Carlo;
:func:`effective_rate` and :func:`imbalance_bound` evaluate the theorem's
formula for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.workloads.distributions import FlowSizeDistribution

SizeSampler = Callable[[np.random.Generator, int], np.ndarray]


def effective_rate(
    arrival_rate: float, num_links: int, mean_size: float, cov: float
) -> float:
    """λ_e of Theorem 2 (equation 2)."""
    if arrival_rate <= 0 or mean_size <= 0 or num_links < 2:
        raise ValueError("need positive rate/size and at least two links")
    return arrival_rate / (8.0 * num_links * np.log(num_links) * (1.0 + cov * cov))


def imbalance_bound(
    arrival_rate: float, num_links: int, mean_size: float, cov: float, t: float
) -> float:
    """Theorem 2's leading-order bound 1/sqrt(λ_e · t)."""
    if t <= 0:
        raise ValueError(f"t must be positive, got {t}")
    return 1.0 / np.sqrt(
        effective_rate(arrival_rate, num_links, mean_size, cov) * t
    )


@dataclass(frozen=True)
class ImbalanceEstimate:
    """Monte-Carlo estimate of E[χ(t)] with the matching theoretical bound."""

    t: float
    mean_imbalance: float
    std_error: float
    bound: float

    @property
    def within_bound(self) -> bool:
        """Whether the estimate respects the theorem (with 3σ slack)."""
        return self.mean_imbalance <= self.bound + 3 * self.std_error


def sampler_from_distribution(dist: FlowSizeDistribution) -> SizeSampler:
    """Adapt an empirical workload into a vectorized size sampler."""
    return lambda rng, count: dist.sample_many(rng, count).astype(float)


def simulate_imbalance(
    *,
    arrival_rate: float,
    num_links: int,
    mean_size: float,
    cov: float,
    t: float,
    sampler: SizeSampler,
    trials: int = 200,
    seed: int = 1,
) -> ImbalanceEstimate:
    """Monte-Carlo E[χ(t)] for random per-flow assignment to ``num_links``.

    ``sampler(rng, count)`` must draw flow sizes whose mean and CoV match
    ``mean_size`` / ``cov`` (used only for the bound and normalization).
    """
    if trials < 2:
        raise ValueError("need at least two trials")
    rng = np.random.default_rng(seed)
    expected_per_link = arrival_rate * mean_size * t / num_links
    values = np.empty(trials)
    for trial in range(trials):
        count = rng.poisson(arrival_rate * t)
        totals = np.zeros(num_links)
        if count > 0:
            sizes = sampler(rng, count)
            # Samplers may return more pieces than flows (flowlet splitting).
            links = rng.integers(num_links, size=len(sizes))
            np.add.at(totals, links, sizes)
        values[trial] = (totals.max() - totals.min()) / expected_per_link
    return ImbalanceEstimate(
        t=t,
        mean_imbalance=float(values.mean()),
        std_error=float(values.std(ddof=1) / np.sqrt(trials)),
        bound=imbalance_bound(arrival_rate, num_links, mean_size, cov, t),
    )


def flowlet_split_sampler(
    sampler: SizeSampler, max_piece: float
) -> SizeSampler:
    """Transform a flow sampler into a flowlet sampler by capping pieces.

    Splitting every flow into chunks of at most ``max_piece`` bytes — the
    idealized effect of flowlet switching — multiplies the arrival count
    and slashes the size CoV, which by Theorem 2 raises λ_e and improves
    balance.  Each flow's pieces are assigned independently, so the caller
    should simply use the returned sampler with the same link-assignment
    logic.
    """

    def split(rng: np.random.Generator, count: int) -> np.ndarray:
        sizes = sampler(rng, count)
        pieces: list[np.ndarray] = []
        for size in sizes:
            whole = int(size // max_piece)
            if whole:
                pieces.append(np.full(whole, max_piece))
            rest = size - whole * max_piece
            if rest > 0:
                pieces.append(np.array([rest]))
        return np.concatenate(pieces) if pieces else np.empty(0)

    return split


__all__ = [
    "ImbalanceEstimate",
    "SizeSampler",
    "effective_rate",
    "flowlet_split_sampler",
    "imbalance_bound",
    "sampler_from_distribution",
    "simulate_imbalance",
]
