"""The bottleneck routing game and Price of Anarchy analysis (paper §6.1).

CONGA's leaves selfishly route their traffic to minimize the congestion of
their own flows.  Banner & Orda's *bottleneck routing game* [6] models this:
users (leaf pairs with demands) split traffic over the 2-hop paths of a
Leaf-Spine network; a user's cost is the highest utilization among links it
uses; a flow is a Nash equilibrium when no user can unilaterally lower its
own bottleneck.  Theorem 1 of the paper: the Price of Anarchy — worst-case
Nash network bottleneck over the optimal network bottleneck — is exactly 2.

This module provides:

* :class:`BottleneckGame` — the game itself, with exact LP solvers for a
  user's best response and for the globally optimal bottleneck, plus
  best-response dynamics (which is what CONGA's continuous rebalancing
  implements in the fluid limit);
* :func:`figure17_gadget` — a worst-case instance achieving PoA = 2: a
  3-leaf × 3-spine fabric where six unit demands are locked into a Nash
  flow with bottleneck 1 (every user's alternative paths are blocked by
  another user's saturated link) while the optimum is 1/2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import linprog


@dataclass(frozen=True)
class GameUser:
    """One player: ``demand`` units from leaf ``src`` to leaf ``dst``."""

    src: int
    dst: int
    demand: float

    def __post_init__(self) -> None:
        if self.demand <= 0:
            raise ValueError(f"demand must be positive: {self}")
        if self.src == self.dst:
            raise ValueError(f"source and destination must differ: {self}")


class BottleneckGame:
    """A bottleneck routing game on a (possibly asymmetric) Leaf-Spine net.

    ``up_capacity[l][s]`` is the capacity of link leaf *l* → spine *s* and
    ``down_capacity[s][l]`` of spine *s* → leaf *l*; zero means the link is
    absent.  A strategy profile is an array ``flows[u][s]`` giving user
    *u*'s traffic through spine *s*.
    """

    def __init__(
        self,
        up_capacity: np.ndarray,
        down_capacity: np.ndarray,
        users: list[GameUser],
    ) -> None:
        up = np.asarray(up_capacity, dtype=float)
        down = np.asarray(down_capacity, dtype=float)
        if up.ndim != 2 or down.ndim != 2:
            raise ValueError("capacity matrices must be 2-D")
        if up.shape[0] != down.shape[1] or up.shape[1] != down.shape[0]:
            raise ValueError(
                f"inconsistent shapes: up {up.shape} vs down {down.shape}"
            )
        if not users:
            raise ValueError("need at least one user")
        self.up = up
        self.down = down
        self.num_leaves, self.num_spines = up.shape
        self.users = list(users)
        for user in users:
            if not (0 <= user.src < self.num_leaves and 0 <= user.dst < self.num_leaves):
                raise ValueError(f"user endpoints out of range: {user}")

    # -- flow bookkeeping ---------------------------------------------------------

    def validate_flows(self, flows: np.ndarray) -> np.ndarray:
        """Check shape, non-negativity, demand satisfaction, link presence."""
        flows = np.asarray(flows, dtype=float)
        if flows.shape != (len(self.users), self.num_spines):
            raise ValueError(
                f"flows must be {(len(self.users), self.num_spines)}, got {flows.shape}"
            )
        if (flows < -1e-9).any():
            raise ValueError("flows must be non-negative")
        for index, user in enumerate(self.users):
            if abs(flows[index].sum() - user.demand) > 1e-6:
                raise ValueError(f"user {index} does not route its full demand")
            for spine in range(self.num_spines):
                if flows[index, spine] > 1e-9 and (
                    self.up[user.src, spine] == 0 or self.down[spine, user.dst] == 0
                ):
                    raise ValueError(
                        f"user {index} routes through missing link via spine {spine}"
                    )
        return flows

    def link_loads(self, flows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Total load per up-link and down-link."""
        up_load = np.zeros_like(self.up)
        down_load = np.zeros_like(self.down)
        for index, user in enumerate(self.users):
            up_load[user.src, :] += flows[index]
            down_load[:, user.dst] += flows[index]
        return up_load, down_load

    def _utilizations(self, flows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        up_load, down_load = self.link_loads(flows)
        with np.errstate(divide="ignore", invalid="ignore"):
            up_util = np.where(self.up > 0, up_load / self.up, 0.0)
            down_util = np.where(self.down > 0, down_load / self.down, 0.0)
        return up_util, down_util

    def network_bottleneck(self, flows: np.ndarray) -> float:
        """B(f): utilization of the most congested link (§6.1)."""
        up_util, down_util = self._utilizations(flows)
        return float(max(up_util.max(), down_util.max()))

    def user_bottleneck(self, flows: np.ndarray, user_index: int) -> float:
        """b_u(f): max utilization among links user ``user_index`` uses."""
        user = self.users[user_index]
        up_util, down_util = self._utilizations(flows)
        worst = 0.0
        for spine in range(self.num_spines):
            if flows[user_index, spine] > 1e-9:
                worst = max(
                    worst, up_util[user.src, spine], down_util[spine, user.dst]
                )
        return worst

    # -- solvers -------------------------------------------------------------------

    def _user_paths(self, user: GameUser) -> list[int]:
        return [
            spine
            for spine in range(self.num_spines)
            if self.up[user.src, spine] > 0 and self.down[spine, user.dst] > 0
        ]

    def best_response(
        self, flows: np.ndarray, user_index: int
    ) -> tuple[np.ndarray, float]:
        """User's bottleneck-minimizing reroute given everyone else's flows.

        Returns (new per-spine flow vector for the user, achieved bottleneck).
        Solved as an LP: minimize U subject to the user's own contribution
        keeping each link it *uses* within U·capacity; links it does not use
        do not constrain it (the bottleneck counts only links with positive
        own flow, which the LP handles because an unused path simply gets
        zero flow).
        """
        user = self.users[user_index]
        paths = self._user_paths(user)
        if not paths:
            raise ValueError(f"user {user_index} has no available path")
        others_up, others_down = self.link_loads(
            self._flows_without(flows, user_index)
        )
        # Variables: one flow per usable path + U.
        nvar = len(paths) + 1
        c = np.zeros(nvar)
        c[-1] = 1.0
        rows, rhs = [], []
        for position, spine in enumerate(paths):
            for load, cap in (
                (others_up[user.src, spine], self.up[user.src, spine]),
                (others_down[spine, user.dst], self.down[spine, user.dst]),
            ):
                row = np.zeros(nvar)
                row[position] = 1.0
                row[-1] = -cap
                rows.append(row)
                rhs.append(-load)
        eq = np.zeros((1, nvar))
        eq[0, : len(paths)] = 1.0
        result = linprog(
            c,
            A_ub=np.array(rows),
            b_ub=np.array(rhs),
            A_eq=eq,
            b_eq=[user.demand],
            bounds=[(0, None)] * nvar,
            method="highs",
        )
        if not result.success:
            raise RuntimeError(f"best-response LP failed: {result.message}")
        vector = np.zeros(self.num_spines)
        for position, spine in enumerate(paths):
            vector[spine] = result.x[position]
        return vector, float(result.x[-1])

    @staticmethod
    def _flows_without(flows: np.ndarray, user_index: int) -> np.ndarray:
        reduced = flows.copy()
        reduced[user_index, :] = 0.0
        return reduced

    def is_nash(self, flows: np.ndarray, tolerance: float = 1e-6) -> bool:
        """Whether no user can strictly improve its own bottleneck."""
        flows = self.validate_flows(flows)
        for index in range(len(self.users)):
            current = self.user_bottleneck(flows, index)
            _vector, achievable = self.best_response(flows, index)
            if achievable < current - tolerance:
                return False
        return True

    def best_response_dynamics(
        self,
        start: np.ndarray | None = None,
        *,
        rounds: int = 100,
        tolerance: float = 1e-9,
    ) -> np.ndarray:
        """Iterate best responses until no user improves (a Nash flow).

        This is the idealized fluid version of CONGA's rebalancing loop,
        which the paper notes converges to a Nash flow because traffic moves
        whenever a smaller-bottleneck path is available.
        """
        if start is None:
            flows = np.zeros((len(self.users), self.num_spines))
            for index, user in enumerate(self.users):
                paths = self._user_paths(user)
                flows[index, paths] = user.demand / len(paths)
        else:
            flows = self.validate_flows(start).copy()
        for _ in range(rounds):
            improved = False
            for index in range(len(self.users)):
                current = self.user_bottleneck(flows, index)
                vector, achievable = self.best_response(flows, index)
                if achievable < current - max(tolerance, 1e-9):
                    flows[index] = vector
                    improved = True
            if not improved:
                break
        return flows

    def optimal_bottleneck(self) -> float:
        """The minimum achievable network bottleneck (centralized optimum)."""
        per_user_paths = [self._user_paths(user) for user in self.users]
        offsets = np.cumsum([0] + [len(p) for p in per_user_paths])
        nvar = int(offsets[-1]) + 1
        c = np.zeros(nvar)
        c[-1] = 1.0
        rows, rhs = [], []
        for leaf in range(self.num_leaves):
            for spine in range(self.num_spines):
                for capacity, is_up in (
                    (self.up[leaf, spine], True),
                    (self.down[spine, leaf], False),
                ):
                    if capacity <= 0:
                        continue
                    row = np.zeros(nvar)
                    for index, user in enumerate(self.users):
                        endpoint = user.src if is_up else user.dst
                        if endpoint != leaf:
                            continue
                        paths = per_user_paths[index]
                        if spine in paths:
                            row[offsets[index] + paths.index(spine)] = 1.0
                    row[-1] = -capacity
                    rows.append(row)
                    rhs.append(0.0)
        eqs = np.zeros((len(self.users), nvar))
        demands = []
        for index, user in enumerate(self.users):
            eqs[index, offsets[index] : offsets[index + 1]] = 1.0
            demands.append(user.demand)
        result = linprog(
            c,
            A_ub=np.array(rows),
            b_ub=np.array(rhs),
            A_eq=eqs,
            b_eq=demands,
            bounds=[(0, None)] * nvar,
            method="highs",
        )
        if not result.success:
            raise RuntimeError(f"optimal-bottleneck LP failed: {result.message}")
        return float(result.x[-1])

    def price_of_anarchy(self, nash_flows: np.ndarray) -> float:
        """B(nash) / B(optimal) for a given Nash flow."""
        return self.network_bottleneck(nash_flows) / self.optimal_bottleneck()


def complete_leaf_spine_game(
    num_leaves: int,
    num_spines: int,
    users: list[GameUser],
    *,
    up_capacity: float = 1.0,
    down_capacity: float = 1.0,
) -> BottleneckGame:
    """A game on a uniform complete bipartite Leaf-Spine network."""
    up = np.full((num_leaves, num_spines), float(up_capacity))
    down = np.full((num_spines, num_leaves), float(down_capacity))
    return BottleneckGame(up, down, users)


def figure17_gadget() -> tuple[BottleneckGame, np.ndarray]:
    """A worst-case instance with Price of Anarchy exactly 2 (Theorem 1).

    Three leaves, three spines, six unit demands (every ordered leaf pair —
    "each pair of adjacent leaves sends 1 unit of traffic to each other").
    In the returned Nash flow each user routes entirely through one spine;
    every loaded link (capacity 1) carries exactly 1, so the network
    bottleneck is 1.  Each user's two alternative paths both cross some
    *other* user's saturated link, so no unilateral move helps — the flow
    is locked.  The six idle links have capacity 2; using them, the optimum
    spreads every demand so that no link exceeds utilization 1/2.
    """
    users = [
        GameUser(0, 1, 1.0),
        GameUser(0, 2, 1.0),
        GameUser(1, 0, 1.0),
        GameUser(1, 2, 1.0),
        GameUser(2, 0, 1.0),
        GameUser(2, 1, 1.0),
    ]
    nash_spine = {0: 0, 1: 1, 2: 0, 3: 2, 4: 1, 5: 2}
    flows = np.zeros((6, 3))
    for index, spine in nash_spine.items():
        flows[index, spine] = 1.0
    up_load = np.zeros((3, 3))
    down_load = np.zeros((3, 3))
    for index, user in enumerate(users):
        up_load[user.src, :] += flows[index]
        down_load[:, user.dst] += flows[index]
    up = np.where(up_load > 0, 1.0, 2.0)
    down = np.where(down_load > 0, 1.0, 2.0)
    game = BottleneckGame(up, down, users)
    return game, flows


__all__ = [
    "BottleneckGame",
    "GameUser",
    "complete_leaf_spine_game",
    "figure17_gadget",
]
