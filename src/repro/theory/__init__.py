"""Game-theoretic and stochastic analysis: PoA (Thm. 1) and imbalance (Thm. 2)."""

from repro.theory.game import (
    BottleneckGame,
    GameUser,
    complete_leaf_spine_game,
    figure17_gadget,
)
from repro.theory.imbalance import (
    ImbalanceEstimate,
    effective_rate,
    flowlet_split_sampler,
    imbalance_bound,
    sampler_from_distribution,
    simulate_imbalance,
)

__all__ = [
    "BottleneckGame",
    "GameUser",
    "ImbalanceEstimate",
    "complete_leaf_spine_game",
    "effective_rate",
    "figure17_gadget",
    "flowlet_split_sampler",
    "imbalance_bound",
    "sampler_from_distribution",
    "simulate_imbalance",
]
