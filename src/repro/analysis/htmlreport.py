"""Self-contained HTML reports: inline-SVG charts, zero dependencies.

``conga-repro report`` renders a sweep (or a whole recovery-matrix
scenario) into **one** HTML file with no network fetches, no JavaScript,
and no plotting libraries — every chart is a hand-built inline SVG, so the
artifact opens identically in a browser, a CI artifact viewer, or an
email attachment years from now.

Three chart primitives cover everything the evaluation needs:

* :func:`svg_line_chart` — multi-series line charts with shaded x-spans
  (fault windows), used for goodput/reroute/drop timelines;
* :func:`svg_cdf_chart` — empirical CDFs (FCT distributions per scheme);
* :func:`svg_heatmap` — ports × time utilization heatmaps from a
  :class:`~repro.obs.timeline.Timeline`.

Number formatting reuses :func:`repro.analysis.report.format_value` so
HTML tables and the text tables benchmarks print stay consistent.
"""

from __future__ import annotations

import html
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.analysis.degradation import window_goodput
from repro.analysis.report import format_value
from repro.faults.events import fault_window
from repro.units import to_milliseconds

if TYPE_CHECKING:
    from repro.apps.spec import PointResult
    from repro.obs.timeline import Timeline

#: Matplotlib-tab10-ish palette; schemes get stable colors by first use.
PALETTE = (
    "#1f77b4",
    "#d62728",
    "#2ca02c",
    "#9467bd",
    "#ff7f0e",
    "#8c564b",
    "#17becf",
    "#7f7f7f",
)

#: Shading for degraded (fault-window) spans on time charts.
FAULT_FILL = "#d62728"
FAULT_OPACITY = "0.12"

_CSS = """
body { font: 14px/1.5 -apple-system, "Segoe UI", Roboto, sans-serif;
       color: #1a1a2e; margin: 2em auto; max-width: 72em; padding: 0 1em; }
h1 { font-size: 1.6em; border-bottom: 2px solid #1a1a2e; }
h2 { font-size: 1.2em; margin-top: 2em; }
h3 { font-size: 1.0em; color: #444; }
table { border-collapse: collapse; margin: 0.8em 0; }
th, td { border: 1px solid #ccc; padding: 0.25em 0.7em; text-align: right; }
th { background: #f0f2f5; }
td:first-child, th:first-child { text-align: left; }
figure { margin: 1em 0; }
figcaption { font-size: 0.85em; color: #555; }
.meta { color: #666; font-size: 0.85em; }
svg { background: #fff; }
.failed { color: #b00; }
"""


def _esc(value: object) -> str:
    return html.escape(str(value))


def scheme_color(scheme: str, order: Sequence[str]) -> str:
    """Stable palette color for ``scheme`` given the report's scheme order."""
    try:
        index = list(order).index(scheme)
    except ValueError:
        index = len(order)
    return PALETTE[index % len(PALETTE)]


def _ticks(lo: float, hi: float, count: int = 5) -> list[float]:
    """``count`` evenly spaced tick values covering ``[lo, hi]``."""
    if hi <= lo:
        return [lo]
    step = (hi - lo) / (count - 1)
    return [lo + step * i for i in range(count)]


def _fmt_tick(value: float) -> str:
    return f"{value:.3g}"


def svg_line_chart(
    curves: Sequence[tuple[str, Sequence[float], Sequence[float], str]],
    *,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
    width: int = 640,
    height: int = 260,
    shaded: Sequence[tuple[float, float]] = (),
    y_min: float | None = 0.0,
) -> str:
    """A multi-series SVG line chart.

    ``curves`` is ``(label, xs, ys, color)`` per series; ``shaded`` lists
    x-spans (data coordinates) drawn as translucent fault-window bands
    behind the curves.  ``y_min=None`` autoscales the y floor; the default
    pins it at 0 (utilization/goodput charts read wrong otherwise).
    """
    left, right, top, bottom = 58, 14, 26, 40
    plot_w = width - left - right
    plot_h = height - top - bottom
    xs_all = [x for _, xs, _, _ in curves for x in xs]
    ys_all = [y for _, _, ys, _ in curves for y in ys]
    if not xs_all:
        return (
            f'<svg width="{width}" height="{height}" '
            'xmlns="http://www.w3.org/2000/svg">'
            f'<text x="{width / 2}" y="{height / 2}" text-anchor="middle" '
            f'fill="#888">{_esc(title)}: no data</text></svg>'
        )
    x_lo, x_hi = min(xs_all), max(xs_all)
    y_lo = min(ys_all) if y_min is None else min(y_min, min(ys_all))
    y_hi = max(ys_all)
    if x_hi <= x_lo:
        x_hi = x_lo + 1.0
    if y_hi <= y_lo:
        y_hi = y_lo + 1.0

    def px(x: float) -> float:
        return left + (x - x_lo) / (x_hi - x_lo) * plot_w

    def py(y: float) -> float:
        return top + plot_h - (y - y_lo) / (y_hi - y_lo) * plot_h

    parts = [
        f'<svg width="{width}" height="{height}" '
        'xmlns="http://www.w3.org/2000/svg" '
        'font-family="sans-serif" font-size="11">'
    ]
    if title:
        parts.append(
            f'<text x="{left}" y="15" font-size="12" font-weight="bold">'
            f"{_esc(title)}</text>"
        )
    for x0, x1 in shaded:
        a, b = max(x0, x_lo), min(x1, x_hi)
        if b <= a:
            continue
        parts.append(
            f'<rect x="{px(a):.1f}" y="{top}" '
            f'width="{px(b) - px(a):.1f}" height="{plot_h}" '
            f'fill="{FAULT_FILL}" opacity="{FAULT_OPACITY}"/>'
        )
    # Axes + ticks.
    parts.append(
        f'<rect x="{left}" y="{top}" width="{plot_w}" height="{plot_h}" '
        'fill="none" stroke="#999"/>'
    )
    for tick in _ticks(x_lo, x_hi):
        x = px(tick)
        parts.append(
            f'<line x1="{x:.1f}" y1="{top + plot_h}" x2="{x:.1f}" '
            f'y2="{top + plot_h + 4}" stroke="#999"/>'
            f'<text x="{x:.1f}" y="{top + plot_h + 16}" '
            f'text-anchor="middle">{_fmt_tick(tick)}</text>'
        )
    for tick in _ticks(y_lo, y_hi):
        y = py(tick)
        parts.append(
            f'<line x1="{left - 4}" y1="{y:.1f}" x2="{left}" y2="{y:.1f}" '
            'stroke="#999"/>'
            f'<text x="{left - 7}" y="{y + 3:.1f}" '
            f'text-anchor="end">{_fmt_tick(tick)}</text>'
        )
    if x_label:
        parts.append(
            f'<text x="{left + plot_w / 2}" y="{height - 6}" '
            f'text-anchor="middle">{_esc(x_label)}</text>'
        )
    if y_label:
        parts.append(
            f'<text x="14" y="{top + plot_h / 2}" text-anchor="middle" '
            f'transform="rotate(-90 14 {top + plot_h / 2})">'
            f"{_esc(y_label)}</text>"
        )
    # Curves.
    for label, xs, ys, color in curves:
        if not xs:
            continue
        points = " ".join(
            f"{px(x):.1f},{py(y):.1f}" for x, y in zip(xs, ys)
        )
        parts.append(
            f'<polyline points="{points}" fill="none" stroke="{color}" '
            'stroke-width="1.6"/>'
        )
    # Legend (top-right, inside the plot).
    for i, (label, _, _, color) in enumerate(curves):
        y = top + 8 + 14 * i
        parts.append(
            f'<rect x="{left + plot_w - 104}" y="{y - 8}" width="10" '
            f'height="10" fill="{color}"/>'
            f'<text x="{left + plot_w - 90}" y="{y + 1}">{_esc(label)}</text>'
        )
    parts.append("</svg>")
    return "".join(parts)


def svg_cdf_chart(
    samples_by_label: Sequence[tuple[str, Sequence[float], str]],
    *,
    title: str = "",
    x_label: str = "",
    width: int = 640,
    height: int = 260,
    max_points: int = 256,
) -> str:
    """Empirical CDF chart: one stepped curve per (label, samples, color).

    Curves are decimated to at most ``max_points`` vertices (uniform index
    stride — deterministic), keeping worst-case report size bounded.
    """
    curves = []
    for label, samples, color in samples_by_label:
        values = sorted(samples)
        n = len(values)
        if n == 0:
            continue
        stride = max(1, n // max_points)
        xs = [values[i] for i in range(0, n, stride)]
        ys = [(i + 1) / n for i in range(0, n, stride)]
        if xs[-1] != values[-1]:
            xs.append(values[-1])
            ys.append(1.0)
        curves.append((label, xs, ys, color))
    return svg_line_chart(
        curves,
        title=title,
        x_label=x_label,
        y_label="fraction of flows",
        width=width,
        height=height,
    )


def _heat_color(value: float) -> str:
    """White → amber → dark red colormap over [0, 1] (clamped)."""
    v = 0.0 if value < 0.0 else (1.0 if value > 1.0 else value)
    if v < 0.5:
        t = v / 0.5
        r, g, b = 255, int(250 - 80 * t), int(245 - 185 * t)
    else:
        t = (v - 0.5) / 0.5
        r, g, b = int(255 - 130 * t), int(170 - 150 * t), int(60 - 47 * t)
    return f"#{r:02x}{g:02x}{b:02x}"


def svg_heatmap(
    row_labels: Sequence[str],
    col_values: Sequence[float],
    matrix: Sequence[Sequence[float]],
    *,
    title: str = "",
    x_label: str = "",
    width: int = 720,
    shaded: Sequence[tuple[float, float]] = (),
) -> str:
    """Rows × columns heatmap (e.g. port utilization over time).

    ``matrix[r][c]`` is the value (expected roughly in [0, 1]) of row
    ``r`` at column position ``col_values[c]``; cells are laid out at the
    actual column coordinates, so decimated (non-uniform) time axes render
    correctly.  ``shaded`` x-spans are outlined above the cells.
    """
    row_h = 13
    left, right, top, bottom = 86, 14, 26, 34
    rows = len(row_labels)
    cols = len(col_values)
    height = top + rows * row_h + bottom
    plot_w = width - left - right
    if cols == 0 or rows == 0:
        return (
            f'<svg width="{width}" height="{height}" '
            'xmlns="http://www.w3.org/2000/svg">'
            f'<text x="{width / 2}" y="{height / 2}" text-anchor="middle" '
            f'fill="#888">{_esc(title)}: no data</text></svg>'
        )
    x_lo, x_hi = min(col_values), max(col_values)
    if x_hi <= x_lo:
        x_hi = x_lo + 1.0

    def px(x: float) -> float:
        return left + (x - x_lo) / (x_hi - x_lo) * plot_w

    # Cell edges midway between successive sample positions.
    edges = [px(x_lo)]
    for c in range(1, cols):
        edges.append((px(col_values[c - 1]) + px(col_values[c])) / 2)
    edges.append(px(x_hi))

    parts = [
        f'<svg width="{width}" height="{height}" '
        'xmlns="http://www.w3.org/2000/svg" '
        'font-family="sans-serif" font-size="10">'
    ]
    if title:
        parts.append(
            f'<text x="{left}" y="15" font-size="12" font-weight="bold">'
            f"{_esc(title)}</text>"
        )
    for r, label in enumerate(row_labels):
        y = top + r * row_h
        parts.append(
            f'<text x="{left - 4}" y="{y + row_h - 3}" '
            f'text-anchor="end">{_esc(label)}</text>'
        )
        row = matrix[r]
        for c in range(cols):
            x0, x1 = edges[c], edges[c + 1]
            parts.append(
                f'<rect x="{x0:.1f}" y="{y}" width="{max(x1 - x0, 0.5):.1f}" '
                f'height="{row_h - 1}" fill="{_heat_color(row[c])}"/>'
            )
    for x0, x1 in shaded:
        a, b = max(x0, x_lo), min(x1, x_hi)
        if b <= a:
            continue
        parts.append(
            f'<rect x="{px(a):.1f}" y="{top - 2}" '
            f'width="{px(b) - px(a):.1f}" height="{rows * row_h + 2}" '
            f'fill="none" stroke="{FAULT_FILL}" stroke-width="1.5" '
            'stroke-dasharray="4 3"/>'
        )
    for tick in _ticks(x_lo, x_hi):
        x = px(tick)
        parts.append(
            f'<text x="{x:.1f}" y="{top + rows * row_h + 14}" '
            f'text-anchor="middle">{_fmt_tick(tick)}</text>'
        )
    if x_label:
        parts.append(
            f'<text x="{left + plot_w / 2}" y="{height - 5}" '
            f'text-anchor="middle" font-size="11">{_esc(x_label)}</text>'
        )
    # Color scale legend.
    for i in range(10):
        parts.append(
            f'<rect x="{width - 130 + i * 10}" y="6" width="10" height="8" '
            f'fill="{_heat_color(i / 9)}"/>'
        )
    parts.append(
        f'<text x="{width - 134}" y="13" text-anchor="end">0</text>'
        f'<text x="{width - 26}" y="13">1</text>'
    )
    parts.append("</svg>")
    return "".join(parts)


def html_table(
    header: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    caption: str = "",
) -> str:
    """An HTML table using the shared text-report number formatting."""
    parts = ["<table>"]
    if caption:
        parts.append(f"<caption>{_esc(caption)}</caption>")
    parts.append(
        "<tr>" + "".join(f"<th>{_esc(h)}</th>" for h in header) + "</tr>"
    )
    for row in rows:
        parts.append(
            "<tr>"
            + "".join(f"<td>{_esc(format_value(v))}</td>" for v in row)
            + "</tr>"
        )
    parts.append("</table>")
    return "".join(parts)


def html_document(
    title: str,
    sections: Sequence[tuple[str, str]],
    *,
    subtitle: str = "",
) -> str:
    """Assemble the final single-file document (inline CSS, no scripts)."""
    parts = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{_esc(title)}</title>",
        f"<style>{_CSS}</style>",
        "</head><body>",
        f"<h1>{_esc(title)}</h1>",
    ]
    if subtitle:
        parts.append(f'<p class="meta">{_esc(subtitle)}</p>')
    for heading, body in sections:
        if heading:
            parts.append(f"<h2>{_esc(heading)}</h2>")
        parts.append(body)
    parts.append("</body></html>")
    return "\n".join(parts)


# -- result-driven section builders -----------------------------------------


def _completions(points: Iterable["PointResult"]) -> list[tuple[int, int]]:
    return [
        (r.start_time + r.fct, r.size)
        for p in points
        for r in p.records
    ]


def _fault_spans(
    points: Sequence["PointResult"], end_time: int
) -> list[tuple[float, float]]:
    """Distinct fault windows (ms) across the points' fault schedules."""
    spans = set()
    for point in points:
        window = fault_window(point.spec.faults)
        if window is None:
            continue
        start, end = window
        spans.add(
            (to_milliseconds(start),
             to_milliseconds(end if end is not None else end_time))
        )
    return sorted(spans)


def goodput_curves(
    points_by_scheme: dict[str, list["PointResult"]],
    *,
    bins: int = 80,
) -> tuple[list[tuple[str, list[float], list[float], str]], int]:
    """Per-scheme mean binned goodput (Gbps) over sim time (ms).

    Each scheme's curve is its points' completion-binned goodput averaged
    across seeds, so replicate noise smooths out while the drain-and-
    recover shape around a fault window stays visible.
    """
    schemes = list(points_by_scheme)
    end_time = max(
        (p.end_time for pts in points_by_scheme.values() for p in pts),
        default=0,
    )
    curves = []
    if end_time <= 0:
        return curves, 0
    bin_width = max(1, end_time // bins)
    for scheme in schemes:
        points = points_by_scheme[scheme]
        if not points:
            continue
        totals = [0] * bins
        for when, size in _completions(points):
            index = min(int(when // bin_width), bins - 1)
            totals[index] += size
        xs = [to_milliseconds((i + 1) * bin_width) for i in range(bins)]
        ys = [
            total * 8.0 / (bin_width * len(points)) for total in totals
        ]  # bytes/bin -> Gbps (bytes*8 / ns == Gbps)
        curves.append((scheme, xs, ys, scheme_color(scheme, schemes)))
    return curves, end_time


def fct_cdf_section(
    points_by_scheme: dict[str, list["PointResult"]],
    *,
    title: str = "FCT CDF (normalized)",
) -> str:
    """Empirical normalized-FCT CDFs, one curve per scheme."""
    schemes = list(points_by_scheme)
    series = []
    for scheme in schemes:
        samples = [
            r.normalized_fct
            for p in points_by_scheme[scheme]
            for r in p.records
        ]
        series.append((scheme, samples, scheme_color(scheme, schemes)))
    chart = svg_cdf_chart(
        series, title=title, x_label="FCT / ideal FCT"
    )
    return f"<figure>{chart}</figure>"


def goodput_section(
    points_by_scheme: dict[str, list["PointResult"]],
    *,
    title: str = "Goodput over time",
) -> str:
    """Mean goodput-over-time chart with fault windows shaded."""
    curves, end_time = goodput_curves(points_by_scheme)
    all_points = [p for pts in points_by_scheme.values() for p in pts]
    shaded = _fault_spans(all_points, end_time)
    chart = svg_line_chart(
        curves,
        title=title,
        x_label="sim time (ms)",
        y_label="goodput (Gbps)",
        shaded=shaded,
    )
    caption = ""
    if shaded:
        caption = (
            "<figcaption>Shaded bands mark degraded (fault) windows."
            "</figcaption>"
        )
    return f"<figure>{chart}{caption}</figure>"


def summary_table_section(points: Sequence["PointResult"]) -> str:
    """The sweep summary table (mirrors the CLI's text table)."""
    rows = []
    for p in points:
        summary = p.summary
        rows.append(
            (
                p.scheme,
                p.load,
                p.spec.seed,
                summary.mean_normalized if summary else float("nan"),
                summary.p99_normalized if summary else float("nan"),
                f"{p.completed}/{p.arrivals}",
                p.fabric_drops,
                p.timeouts,
                "cache" if p.from_cache else "run",
            )
        )
    return html_table(
        ["scheme", "load", "seed", "mean FCT", "p99 FCT", "done",
         "drops", "RTOs", "source"],
        rows,
    )


def timeline_sections(
    point: "PointResult", *, label: str = ""
) -> list[tuple[str, str]]:
    """Heatmap + rate charts for one point's :class:`Timeline`.

    Returns ``(heading, html)`` sections; empty when the point carries no
    timeline (the collector was off).
    """
    timeline = point.timeline
    if timeline is None or not timeline.times:
        return []
    name = label or point.spec.label()
    times_ms = [to_milliseconds(t) for t in timeline.times]
    shaded = _timeline_fault_spans(timeline, point.end_time)
    matrix = [
        timeline.utilization[port] for port in timeline.port_names
    ]
    heat = svg_heatmap(
        timeline.port_names,
        times_ms,
        matrix,
        title="fabric port utilization",
        x_label="sim time (ms)",
        shaded=shaded,
    )
    rate_curves = [
        ("flowlet decisions", times_ms,
         list(timeline.flowlet_decisions), PALETTE[0]),
        ("fault reroutes", times_ms,
         list(timeline.fault_reroutes), PALETTE[1]),
        ("RTO timeouts", times_ms, list(timeline.timeouts), PALETTE[4]),
        ("drops", times_ms, list(timeline.drops), PALETTE[5]),
    ]
    rates = svg_line_chart(
        rate_curves,
        title="reroute / loss activity per interval",
        x_label="sim time (ms)",
        y_label="events / interval",
        shaded=shaded,
    )
    interval = timeline.interval
    goodput = svg_line_chart(
        [
            (
                "goodput",
                times_ms,
                [g * 8.0 / interval for g in timeline.goodput_bytes],
                PALETTE[2],
            )
        ],
        title="goodput per interval",
        x_label="sim time (ms)",
        y_label="Gbps",
        shaded=shaded,
    )
    meta = (
        f'<p class="meta">timeline: {timeline.samples} samples @ '
        f"{to_milliseconds(interval):g} ms, digest "
        f"{timeline.digest()[:12]}</p>"
    )
    body = f"{meta}<figure>{heat}</figure><figure>{rates}</figure>" \
           f"<figure>{goodput}</figure>"
    return [(f"Timeline — {name}", body)]


def _timeline_fault_spans(
    timeline: "Timeline", end_time: int
) -> list[tuple[float, float]]:
    """Degraded spans (ms) from a timeline's applied-fault log."""
    spans: list[tuple[float, float]] = []
    open_at: int | None = None
    for when, _, restores in timeline.fault_events:
        if restores:
            if open_at is not None:
                spans.append(
                    (to_milliseconds(open_at), to_milliseconds(when))
                )
                open_at = None
        elif open_at is None:
            open_at = when
    if open_at is not None:
        spans.append((to_milliseconds(open_at), to_milliseconds(end_time)))
    return spans


def group_by_scheme(
    points: Iterable["PointResult"],
) -> dict[str, list["PointResult"]]:
    """Points grouped by scheme, preserving first-seen scheme order."""
    groups: dict[str, list[PointResult]] = {}
    for point in points:
        groups.setdefault(point.scheme, []).append(point)
    return groups


def sweep_report(
    points: Sequence["PointResult"],
    *,
    title: str,
    subtitle: str = "",
    failures: Sequence[object] = (),
    timelines: bool = True,
) -> str:
    """The standard sweep page: summary table, FCT CDFs, goodput curves.

    When points carry timelines (and ``timelines`` is true), one timeline
    section is rendered per scheme (the first point of each), keeping the
    file bounded on big sweeps.
    """
    groups = group_by_scheme(points)
    sections: list[tuple[str, str]] = [
        ("Summary", summary_table_section(points)),
        ("Flow completion times", fct_cdf_section(groups)),
        ("Goodput", goodput_section(groups)),
    ]
    if failures:
        rows = [
            (f.spec.label(), f.kind, f.attempts, _esc(f.error)[:120])
            for f in failures
        ]
        sections.append(
            (
                "Failures",
                html_table(["point", "kind", "attempts", "error"], rows),
            )
        )
    if timelines:
        for scheme, group in groups.items():
            sections.extend(
                timeline_sections(group[0], label=group[0].spec.label())
            )
    return html_document(title, sections, subtitle=subtitle)


def recovery_report(
    *,
    title: str,
    baseline: Sequence["PointResult"],
    cells: Sequence[tuple[dict, Sequence["PointResult"]]],
    subtitle: str = "",
    timelines: bool = True,
) -> str:
    """The recovery-matrix page (``caft_recovery.yaml`` as one report).

    ``baseline`` is the scenario's own fault-free sweep; each cell pairs
    its scenario ``params.cells`` entry with the faulted sweep's points.
    Every cell gets a scored table (in-window goodput vs the same
    scheme+seed's *healthy* goodput over the identical window — the same
    normalization the recovery-matrix benchmark uses) and a goodput
    timeline with the fault window shaded.
    """
    healthy = {(p.scheme, p.spec.seed): p.records for p in baseline}
    sections: list[tuple[str, str]] = [
        (
            "Healthy baseline",
            summary_table_section(baseline)
            + fct_cdf_section(
                group_by_scheme(baseline), title="baseline FCT CDF"
            ),
        )
    ]
    for cell, points in cells:
        cell_name = (
            f"{cell.get('tier', '?')}-{cell.get('kind', '?')} "
            f"×{cell.get('density', '?')}"
        )
        groups = group_by_scheme(points)
        rows = []
        for scheme, group in groups.items():
            retained: list[float] = []
            fcts: list[float] = []
            rtos: list[int] = []
            for point in group:
                deg = point.degradation()
                window_end = (
                    deg.window_end
                    if deg.window_end is not None
                    else deg.end_time
                )
                records = healthy.get((point.scheme, point.spec.seed))
                if records is None:  # baseline point failed; skip the score
                    continue
                base = window_goodput(records, deg.window_start, window_end)
                if base > 0:
                    retained.append(deg.goodput_during_bps / base)
                if point.summary is not None:
                    fcts.append(point.summary.mean_normalized)
                rtos.append(point.timeouts)
            rows.append(
                (
                    scheme,
                    sum(retained) / len(retained) if retained else
                    float("nan"),
                    sum(fcts) / len(fcts) if fcts else float("nan"),
                    sum(rtos) / len(rtos) if rtos else float("nan"),
                )
            )
        table = html_table(
            ["scheme", "goodput retained", "mean FCT (norm)",
             "RTO timeouts"],
            rows,
            caption="goodput scored against the healthy baseline over "
                    "the same window",
        )
        body = table + goodput_section(
            groups, title=f"goodput — {cell_name}"
        )
        if timelines:
            for scheme, group in groups.items():
                for heading, html_body in timeline_sections(
                    group[0], label=f"{cell_name} {scheme}"
                ):
                    body += f"<h3>{_esc(heading)}</h3>{html_body}"
        sections.append((f"Cell: {cell_name}", body))
    return html_document(title, sections, subtitle=subtitle)


__all__ = [
    "PALETTE",
    "fct_cdf_section",
    "goodput_curves",
    "goodput_section",
    "group_by_scheme",
    "html_document",
    "html_table",
    "recovery_report",
    "scheme_color",
    "summary_table_section",
    "svg_cdf_chart",
    "svg_heatmap",
    "svg_line_chart",
    "sweep_report",
    "timeline_sections",
]
