"""Flow completion time statistics (the paper's primary metric, §5.2).

The figures report three views per scheme and load level:

* overall average FCT normalized to the idle-network optimum (Figs. 9a,
  10a, 11a, 11b);
* average FCT of small flows (< 100 KB) normalized to ECMP's value
  (Figs. 9b, 10b);
* average FCT of large flows (> 10 MB) normalized to ECMP's value
  (Figs. 9c, 10c).

:class:`FctSummary` computes the per-scheme aggregates; the cross-scheme
ECMP normalization happens in the benchmark harnesses, which have all
schemes' results in hand.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.transport.tcp import FlowRecord

#: Paper's small-flow threshold (bytes).
SMALL_FLOW_BYTES = 100_000

#: Paper's large-flow threshold (bytes).
LARGE_FLOW_BYTES = 10_000_000


@dataclass(frozen=True)
class FctSummary:
    """Aggregated FCT statistics for one experiment run."""

    count: int
    mean_normalized: float
    p95_normalized: float
    p99_normalized: float
    mean_fct_small: float
    mean_fct_large: float
    count_small: int
    count_large: int

    @staticmethod
    def from_records(
        records: list[FlowRecord],
        *,
        small_threshold: int = SMALL_FLOW_BYTES,
        large_threshold: int = LARGE_FLOW_BYTES,
    ) -> "FctSummary":
        """Summarize completed flow records.

        ``mean_fct_small`` / ``mean_fct_large`` are *raw* mean FCTs in ticks
        for the two buckets (NaN when the bucket is empty); callers divide by
        a baseline scheme's bucket means to obtain the paper's relative
        plots.
        """
        if not records:
            raise ValueError("no completed flows to summarize")
        normalized = np.array([r.normalized_fct for r in records])
        small = np.array(
            [r.fct for r in records if r.size < small_threshold], dtype=float
        )
        large = np.array(
            [r.fct for r in records if r.size > large_threshold], dtype=float
        )
        return FctSummary(
            count=len(records),
            mean_normalized=float(normalized.mean()),
            p95_normalized=float(np.percentile(normalized, 95)),
            p99_normalized=float(np.percentile(normalized, 99)),
            mean_fct_small=float(small.mean()) if small.size else float("nan"),
            mean_fct_large=float(large.mean()) if large.size else float("nan"),
            count_small=int(small.size),
            count_large=int(large.size),
        )


def records_digest(records: list[FlowRecord]) -> str:
    """A stable hex digest of per-flow completion records.

    Every integer field of every record feeds the hash, so two runs agree
    iff their per-flow FCT results are bit-identical.  The golden
    determinism tests pin these digests across kernel refactors, and
    ``repro bench`` reports them so a perf regression hunt can immediately
    tell an "only faster" change from a behavioural one.
    """
    hasher = hashlib.sha256()
    for r in records:
        hasher.update(
            f"{r.flow_id},{r.src},{r.dst},{r.size},"
            f"{r.start_time},{r.fct},{r.ideal_fct};".encode()
        )
    return hasher.hexdigest()


def relative_to(value: float, baseline: float) -> float:
    """``value / baseline`` with NaN propagation for empty buckets."""
    if baseline != baseline or value != value:  # NaN check without numpy
        return float("nan")
    if baseline <= 0:
        raise ValueError(f"baseline must be positive, got {baseline}")
    return value / baseline


__all__ = [
    "FctSummary",
    "LARGE_FLOW_BYTES",
    "SMALL_FLOW_BYTES",
    "records_digest",
    "relative_to",
]
