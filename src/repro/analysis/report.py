"""Plain-text result tables and CDF summaries.

The evaluation harnesses print the same series the paper plots; this module
provides the rendering so benchmarks, examples, and the CLI share one
format.  Keeping it text-based (no plotting dependency) suits headless CI
and diffs well.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np


def format_value(value) -> str:
    """Render one cell: floats at 3 significant digits, all else via str."""
    if isinstance(value, float):
        return f"{value:.3g}"
    return str(value)


def render_table(
    title: str, header: Sequence[str], rows: Iterable[Sequence]
) -> str:
    """Render an aligned fixed-width table under a title line."""
    materialized = [list(row) for row in rows]
    if any(len(row) != len(header) for row in materialized):
        raise ValueError("every row must match the header width")
    widths = [
        max(
            len(str(header[column])),
            max(
                (len(format_value(row[column])) for row in materialized),
                default=0,
            ),
        )
        for column in range(len(header))
    ]
    lines = [f"=== {title} ==="]
    lines.append(
        "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    )
    for row in materialized:
        lines.append(
            "  ".join(format_value(v).ljust(w) for v, w in zip(row, widths))
        )
    return "\n".join(lines)


def print_table(title: str, header: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Print :func:`render_table` output preceded by a blank line."""
    print("\n" + render_table(title, header, rows))


def cdf_points(
    samples: Sequence[float], quantiles: Sequence[float] = (10, 25, 50, 75, 90, 99)
) -> list[tuple[float, float]]:
    """(quantile, value) pairs summarizing a sample set's CDF."""
    if len(samples) == 0:
        raise ValueError("no samples")
    array = np.asarray(samples, dtype=float)
    return [(q, float(np.percentile(array, q))) for q in quantiles]


def summarize_series(samples: Sequence[float]) -> dict[str, float]:
    """Mean/median/p90/p99/min/max of a series, as a plain dict."""
    if len(samples) == 0:
        raise ValueError("no samples")
    array = np.asarray(samples, dtype=float)
    return {
        "mean": float(array.mean()),
        "p50": float(np.percentile(array, 50)),
        "p90": float(np.percentile(array, 90)),
        "p99": float(np.percentile(array, 99)),
        "min": float(array.min()),
        "max": float(array.max()),
    }


__all__ = [
    "cdf_points",
    "format_value",
    "print_table",
    "render_table",
    "summarize_series",
]
