"""Evaluation metrics: FCT statistics, throughput imbalance, queue monitors."""

from repro.analysis.degradation import DegradationSummary, window_goodput
from repro.analysis.fct import (
    FctSummary,
    LARGE_FLOW_BYTES,
    SMALL_FLOW_BYTES,
    relative_to,
)
from repro.analysis.htmlreport import (
    html_document,
    recovery_report,
    svg_heatmap,
    svg_line_chart,
    sweep_report,
    timeline_sections,
)
from repro.analysis.monitors import (
    EmptySeriesError,
    ImbalanceSeries,
    QueueMonitor,
    QueueSeries,
    ThroughputImbalanceMonitor,
)
from repro.analysis.report import (
    cdf_points,
    print_table,
    render_table,
    summarize_series,
)

__all__ = [
    "DegradationSummary",
    "EmptySeriesError",
    "FctSummary",
    "ImbalanceSeries",
    "LARGE_FLOW_BYTES",
    "QueueMonitor",
    "QueueSeries",
    "SMALL_FLOW_BYTES",
    "ThroughputImbalanceMonitor",
    "cdf_points",
    "html_document",
    "print_table",
    "recovery_report",
    "relative_to",
    "render_table",
    "summarize_series",
    "svg_heatmap",
    "svg_line_chart",
    "sweep_report",
    "timeline_sections",
    "window_goodput",
]
