"""Runtime monitors: uplink throughput imbalance and queue occupancy.

Figure 12 measures load balancing efficiency directly as the *throughput
imbalance* across a leaf's uplinks: synchronized 10 ms samples of per-uplink
throughput, reporting ``(MAX − MIN) / AVG`` per sample.  Figure 11(c) and
Figure 16 report queue-occupancy distributions at fabric ports.  Both
monitors here sample on a periodic timer and expose the raw series so
benchmarks can build CDFs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.series import DEFAULT_SERIES_LIMIT, DecimatedSeries
from repro.net.port import Port
from repro.sim.kernel import PeriodicTimer
from repro.units import milliseconds

if TYPE_CHECKING:
    from repro.sim import Simulator


def _port_name(port) -> str:
    """Accept either a live :class:`Port` or its name string."""
    return port.name if isinstance(port, Port) else port


class EmptySeriesError(ValueError):
    """A monitor statistic was requested before any sample landed.

    Short runs (smoke tests, quick sweeps) can finish before a monitor's
    first loaded window, so "no samples" is an expected condition that
    sweep-level aggregation wants to *skip and log*, not crash on.  The
    exception carries the monitor name and its sampling interval so the
    skip message can say which monitor came up empty and how coarse its
    windows were.  Subclasses ``ValueError`` for backward compatibility
    with callers that caught the old bare error.
    """

    def __init__(self, monitor: str, interval: int) -> None:
        super().__init__(
            f"no samples recorded by {monitor} (sampling interval {interval} ns)"
        )
        self.monitor = monitor
        self.interval = interval


@dataclass(frozen=True)
class ImbalanceSeries:
    """Picklable snapshot of a :class:`ThroughputImbalanceMonitor`.

    Carries the raw per-window samples (fractions, not percent) so results
    can cross a process boundary or live in an on-disk cache without
    dragging the live monitor, simulator, or ports along.
    """

    interval: int
    samples: tuple[float, ...]
    sample_times: tuple[int, ...]

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile of recorded imbalance samples (percent)."""
        if not self.samples:
            raise EmptySeriesError("ImbalanceSeries", self.interval)
        return float(np.percentile(np.array(self.samples) * 100.0, q))

    def mean_percent(self) -> float:
        """Mean imbalance in percent."""
        if not self.samples:
            raise EmptySeriesError("ImbalanceSeries", self.interval)
        return float(np.mean(self.samples) * 100.0)

    def samples_before(self, deadline: int) -> list[float]:
        """Samples from windows that ended no later than ``deadline``."""
        return [
            value
            for value, when in zip(self.samples, self.sample_times)
            if when <= deadline
        ]


@dataclass(frozen=True)
class QueueSeries:
    """Picklable snapshot of a :class:`QueueMonitor`.

    ``samples`` maps port name → occupancy series; ``port_names`` preserves
    the monitor's port order so callers can address "the first hotspot
    port" without a live fabric.  Lookup methods accept a ``Port`` or a
    name string.
    """

    interval: int
    samples: dict[str, tuple[int, ...]]
    port_names: tuple[str, ...]

    def series(self, port) -> tuple[int, ...]:
        """The recorded occupancy series for ``port``."""
        return self.samples[_port_name(port)]

    def percentile(self, port, q: float) -> float:
        """The ``q``-th percentile occupancy (bytes) at ``port``."""
        series = self.series(port)
        if not series:
            raise EmptySeriesError(
                f"QueueSeries[{_port_name(port)}]", self.interval
            )
        return float(np.percentile(series, q))

    def mean(self, port) -> float:
        """Mean occupancy (bytes) at ``port``."""
        series = self.series(port)
        if not series:
            raise EmptySeriesError(
                f"QueueSeries[{_port_name(port)}]", self.interval
            )
        return float(np.mean(series))


class ThroughputImbalanceMonitor:
    """Samples (MAX−MIN)/AVG throughput across a port group (Fig. 12)."""

    def __init__(
        self,
        sim: "Simulator",
        ports: list[Port],
        interval: int = milliseconds(10),
    ) -> None:
        if len(ports) < 2:
            raise ValueError("imbalance needs at least two ports")
        self.sim = sim
        self.ports = ports
        self.interval = interval
        self.samples: list[float] = []
        self.sample_times: list[int] = []
        self._last_bytes = [port.tx_bytes for port in ports]
        self._timer = PeriodicTimer(sim, interval, self._sample, start=False)

    def start(self) -> None:
        """Begin sampling."""
        self._last_bytes = [port.tx_bytes for port in self.ports]
        self._timer.start()

    def stop(self) -> None:
        """Stop sampling."""
        self._timer.stop()

    def _sample(self) -> None:
        current = [port.tx_bytes for port in self.ports]
        deltas = [now - last for now, last in zip(current, self._last_bytes)]
        self._last_bytes = current
        total = sum(deltas)
        if total <= 0:
            return  # idle interval: no traffic to be imbalanced about
        average = total / len(deltas)
        imbalance = (max(deltas) - min(deltas)) / average
        self.samples.append(imbalance)
        self.sample_times.append(self.sim.now)

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile of recorded imbalance samples (percent)."""
        if not self.samples:
            raise EmptySeriesError("ThroughputImbalanceMonitor", self.interval)
        return float(np.percentile(np.array(self.samples) * 100.0, q))

    def mean_percent(self) -> float:
        """Mean imbalance in percent."""
        if not self.samples:
            raise EmptySeriesError("ThroughputImbalanceMonitor", self.interval)
        return float(np.mean(self.samples) * 100.0)

    def samples_before(self, deadline: int) -> list[float]:
        """Samples from windows that ended no later than ``deadline``.

        Experiments use this to restrict the statistic to the loaded phase
        of a run — the long drain tail after the last arrival contains
        near-idle windows whose imbalance is meaningless.
        """
        return [
            value
            for value, when in zip(self.samples, self.sample_times)
            if when <= deadline
        ]

    def snapshot(self) -> ImbalanceSeries:
        """Freeze the recorded series into a picklable value object."""
        return ImbalanceSeries(
            interval=self.interval,
            samples=tuple(self.samples),
            sample_times=tuple(self.sample_times),
        )


class QueueMonitor:
    """Periodically samples byte occupancy of a set of queues (Fig. 11c/16).

    Per-port series are bounded :class:`DecimatedSeries` (uniform stride
    decimation, ``max_samples`` retained per port), so week-long simulated
    runs keep constant memory while the occupancy CDFs stay faithful.
    """

    def __init__(
        self,
        sim: "Simulator",
        ports: list[Port],
        interval: int = milliseconds(1),
        max_samples: int = DEFAULT_SERIES_LIMIT,
    ) -> None:
        if not ports:
            raise ValueError("need at least one port to monitor")
        self.sim = sim
        self.ports = ports
        self.interval = interval
        self.samples: dict[str, DecimatedSeries] = {
            port.name: DecimatedSeries(max_samples) for port in ports
        }
        self._timer = PeriodicTimer(sim, interval, self._sample, start=False)

    def start(self) -> None:
        """Begin sampling."""
        self._timer.start()

    def stop(self) -> None:
        """Stop sampling."""
        self._timer.stop()

    def _sample(self) -> None:
        for port in self.ports:
            self.samples[port.name].append(port.queue.byte_occupancy)

    def series(self, port: Port) -> DecimatedSeries:
        """The recorded (decimated) occupancy series for ``port``."""
        return self.samples[port.name]

    def percentile(self, port: Port, q: float) -> float:
        """The ``q``-th percentile occupancy (bytes) at ``port``."""
        series = self.samples[port.name]
        if not series:
            raise EmptySeriesError(f"QueueMonitor[{port.name}]", self.interval)
        return float(np.percentile(list(series), q))

    def mean(self, port: Port) -> float:
        """Mean occupancy (bytes) at ``port``."""
        series = self.samples[port.name]
        if not series:
            raise EmptySeriesError(f"QueueMonitor[{port.name}]", self.interval)
        return float(np.mean(list(series)))

    def snapshot(self) -> QueueSeries:
        """Freeze the recorded series into a picklable value object."""
        return QueueSeries(
            interval=self.interval,
            samples={name: tuple(s) for name, s in self.samples.items()},
            port_names=tuple(port.name for port in self.ports),
        )


__all__ = [
    "EmptySeriesError",
    "ImbalanceSeries",
    "QueueMonitor",
    "QueueSeries",
    "ThroughputImbalanceMonitor",
]
