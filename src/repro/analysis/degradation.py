"""Degradation metrics for fault-injection runs (Figs. 11/16 territory).

The paper's resilience story is about what happens *while* the fabric is
degraded and how fast things normalize afterwards.  This module turns a
run's flow records plus the fault window (from
:func:`repro.faults.fault_window`) into those numbers:

* application goodput (completed bytes per second) before, during, and
  after the degraded window;
* post-restore recovery time — how long after the window closes it takes
  binned goodput to climb back to a fraction of the pre-fault level;
* the sender-side loss-recovery counters (retransmits, RTO timeouts)
  accumulated by the run.

Goodput attributes each flow's bytes to its completion instant
(``start_time + fct``), matching how an application measures "requests
finished per second".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.transport.tcp import FlowRecord
from repro.units import milliseconds


def _phase_goodput(
    completions: Sequence[tuple[int, int]], start: int, end: int
) -> float:
    """Goodput in bits/sec of flows completing in ``[start, end)``."""
    duration = end - start
    if duration <= 0:
        return 0.0
    total = sum(size for when, size in completions if start <= when < end)
    return total * 8e9 / duration


def window_goodput(records: Sequence[FlowRecord], start: int, end: int) -> float:
    """Goodput (bits/sec) of ``records`` completing in ``[start, end)``.

    The same completion-instant attribution the summary uses, exposed for
    cross-run comparisons: a fault benchmark can score a faulted run's
    in-window goodput against a *fault-free* run of the same spec over the
    identical window, which sidesteps the ramp-up noise a run's own
    pre-fault phase carries when the fault lands early.
    """
    return _phase_goodput(
        [(r.start_time + r.fct, r.size) for r in records], start, end
    )


@dataclass(frozen=True)
class DegradationSummary:
    """How one run behaved across its fault window.

    ``window_end`` of ``None`` means the degradation persisted to the end
    of the run (no restoring event), in which case ``goodput_after_bps``
    is 0 and ``recovery_time`` is ``None``.  ``recovery_time`` is also
    ``None`` when binned goodput never re-reached the threshold before the
    run ended.
    """

    window_start: int
    window_end: int | None
    end_time: int
    goodput_before_bps: float
    goodput_during_bps: float
    goodput_after_bps: float
    recovery_time: int | None
    retransmissions: int
    timeouts: int
    #: Peak per-tier capacity asymmetry over the fault schedule, as sorted
    #: (tier, fraction) pairs — e.g. ``(("core", 0.25), ("leaf", 0.0))``
    #: for a run that lost a quarter of its spine↔core capacity.  Empty
    #: when the caller has no injector bookkeeping to report.
    tier_asymmetry: tuple[tuple[str, float], ...] = ()

    @staticmethod
    def from_records(
        records: Sequence[FlowRecord],
        *,
        window_start: int,
        window_end: int | None,
        end_time: int,
        retransmissions: int = 0,
        timeouts: int = 0,
        tier_asymmetry: tuple[tuple[str, float], ...] = (),
        bin_width: int = milliseconds(1),
        recovery_fraction: float = 0.9,
    ) -> "DegradationSummary":
        """Compute the degradation view of one run's completions.

        ``recovery_time`` is measured from ``window_end`` to the end of
        the first ``bin_width`` bin whose goodput reaches
        ``recovery_fraction`` of the pre-fault (before-window) goodput.
        """
        if bin_width <= 0:
            raise ValueError(f"bin_width must be positive, got {bin_width}")
        if not 0.0 < recovery_fraction <= 1.0:
            raise ValueError(
                f"recovery_fraction must be in (0, 1], got {recovery_fraction}"
            )
        completions = [(r.start_time + r.fct, r.size) for r in records]
        during_end = window_end if window_end is not None else end_time
        before = _phase_goodput(completions, 0, window_start)
        during = _phase_goodput(completions, window_start, during_end)
        after = (
            _phase_goodput(completions, window_end, end_time)
            if window_end is not None
            else 0.0
        )

        recovery: int | None = None
        if window_end is not None and before > 0.0:
            threshold = recovery_fraction * before
            edge = window_end
            while edge < end_time:
                bin_end = min(edge + bin_width, end_time)
                if _phase_goodput(completions, edge, bin_end) >= threshold:
                    recovery = bin_end - window_end
                    break
                edge = bin_end

        return DegradationSummary(
            window_start=window_start,
            window_end=window_end,
            end_time=end_time,
            goodput_before_bps=before,
            goodput_during_bps=during,
            goodput_after_bps=after,
            recovery_time=recovery,
            retransmissions=retransmissions,
            timeouts=timeouts,
            tier_asymmetry=tuple(tier_asymmetry),
        )

    @property
    def goodput_retained(self) -> float:
        """In-window goodput as a fraction of pre-fault goodput.

        The single-number "graceful degradation" score: 1.0 means the
        fault was invisible to applications; NaN when there was no
        pre-fault phase to compare against.
        """
        if self.goodput_before_bps <= 0.0:
            return float("nan")
        return self.goodput_during_bps / self.goodput_before_bps

    @property
    def goodput_recovered(self) -> float:
        """Post-restore goodput as a fraction of pre-fault goodput.

        The recovery-matrix companion to :attr:`goodput_retained`: 1.0
        means the fabric came all the way back after the window closed.
        NaN when there was no pre-fault phase; 0.0 when the degradation
        never cleared (``window_end`` is ``None``).
        """
        if self.goodput_before_bps <= 0.0:
            return float("nan")
        return self.goodput_after_bps / self.goodput_before_bps

    def asymmetry_of(self, tier: str) -> float:
        """Peak asymmetry recorded for ``tier`` (0.0 when never degraded)."""
        return dict(self.tier_asymmetry).get(tier, 0.0)


__all__ = ["DegradationSummary", "window_goodput"]
