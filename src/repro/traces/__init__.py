"""Synthetic packet traces and flowlet measurement analysis (paper §2.6)."""

from repro.traces.flowlets import (
    FIGURE5_GAPS,
    PacketTrace,
    SyntheticTraceGenerator,
    byte_median_size,
    byte_weighted_cdf,
    concurrency_per_window,
    flowlet_sizes,
)

__all__ = [
    "FIGURE5_GAPS",
    "PacketTrace",
    "SyntheticTraceGenerator",
    "byte_median_size",
    "byte_weighted_cdf",
    "concurrency_per_window",
    "flowlet_sizes",
]
