"""Packet-trace flowlet analysis (paper §2.6.1, Figure 5).

The paper instruments a production cluster (4500 hosts, 150 GB of packet
captures) and shows that datacenter traffic is bursty enough at sub-ms
timescales that flowlet switching gives ~two orders of magnitude finer
balancing granularity: 50% of bytes are in flows larger than ~30 MB, but in
*flowlets* (at a 500 µs inactivity gap) the byte-median transfer drops to
~500 KB.  It also measures flowlet concurrency — distinct 5-tuples per 1 ms
window — finding a median of ~130, which is what makes a 64K-entry flowlet
table ample.

Production traces are proprietary, so :class:`SyntheticTraceGenerator`
synthesizes an equivalent: heavy-tailed flows whose packets leave in
NIC-offload-style line-rate bursts (TSO emits up to 64 KB back-to-back
[29]) separated by application-paced gaps.  The analysis functions are
trace-agnostic — they consume (time, flow, size) arrays from any source.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.units import GBPS, MICROSECOND, MILLISECOND, SECOND
from repro.workloads.distributions import ENTERPRISE, FlowSizeDistribution


@dataclass(frozen=True)
class PacketTrace:
    """A packet trace: parallel arrays sorted by timestamp."""

    times: np.ndarray  # int64 nanoseconds
    flows: np.ndarray  # int64 flow ids
    sizes: np.ndarray  # int64 bytes

    def __post_init__(self) -> None:
        if not (len(self.times) == len(self.flows) == len(self.sizes)):
            raise ValueError("trace arrays must have equal length")
        if len(self.times) and (np.diff(self.times) < 0).any():
            raise ValueError("trace must be sorted by time")

    @property
    def total_bytes(self) -> int:
        """Total bytes in the trace."""
        return int(self.sizes.sum())

    @property
    def duration(self) -> int:
        """Time span covered by the trace (ticks)."""
        if len(self.times) < 2:
            return 0
        return int(self.times[-1] - self.times[0])

    def save(self, path) -> None:
        """Persist the trace to an ``.npz`` file.

        Generating a large synthetic trace takes seconds; analyses over
        several gap values are instant.  Saving lets a trace be produced
        once and shared across experiments (the paper's team analyzed one
        150 GB capture many ways).
        """
        np.savez_compressed(
            path, times=self.times, flows=self.flows, sizes=self.sizes
        )

    @staticmethod
    def load(path) -> "PacketTrace":
        """Load a trace previously written by :meth:`save`."""
        with np.load(path) as data:
            return PacketTrace(
                times=data["times"], flows=data["flows"], sizes=data["sizes"]
            )


class SyntheticTraceGenerator:
    """Generates bursty datacenter-like packet traces.

    Each flow draws a size from ``workload`` and an application rate from a
    log-uniform range, then emits its bytes as line-rate bursts of up to
    ``burst_bytes`` separated by the gaps the application rate implies.
    This reproduces the two ingredients behind Figure 5: heavy-tailed flow
    sizes and NIC-offload burstiness at 10–100 µs timescales.
    """

    def __init__(
        self,
        *,
        workload: FlowSizeDistribution = ENTERPRISE,
        line_rate_bps: int = 10 * GBPS,
        burst_bytes: int = 65_536,
        packet_bytes: int = 1500,
        min_app_rate_bps: float = 200e6,
        max_app_rate_bps: float = 8e9,
        elephant_bytes: int = 10_000_000,
        elephant_max_rate_bps: float = 1.5e9,
        seed: int = 1,
    ) -> None:
        if burst_bytes < packet_bytes:
            raise ValueError("burst must hold at least one packet")
        if not 0 < min_app_rate_bps <= max_app_rate_bps <= line_rate_bps:
            raise ValueError("need 0 < min_app_rate <= max_app_rate <= line rate")
        self.workload = workload
        self.line_rate_bps = line_rate_bps
        self.burst_bytes = burst_bytes
        self.packet_bytes = packet_bytes
        self.min_app_rate_bps = min_app_rate_bps
        self.max_app_rate_bps = max_app_rate_bps
        # Very large transfers (storage replication, backups) are paced by
        # the application/disk, not the NIC; capping their long-run rate is
        # what creates the inter-burst gaps that flowlet switching exploits.
        self.elephant_bytes = elephant_bytes
        self.elephant_max_rate_bps = min(elephant_max_rate_bps, max_app_rate_bps)
        self.rng = np.random.default_rng(seed)

    def generate(self, num_flows: int, *, arrival_rate_per_s: float = 2000.0) -> PacketTrace:
        """Produce a merged trace of ``num_flows`` flows."""
        if num_flows < 1:
            raise ValueError("need at least one flow")
        starts = np.cumsum(
            self.rng.exponential(1.0 / arrival_rate_per_s, size=num_flows)
        )
        all_times: list[np.ndarray] = []
        all_flows: list[np.ndarray] = []
        all_sizes: list[np.ndarray] = []
        for flow_id in range(num_flows):
            size = self.workload.sample(self.rng)
            rate_ceiling = (
                self.elephant_max_rate_bps
                if size > self.elephant_bytes
                else self.max_app_rate_bps
            )
            app_rate = float(
                np.exp(
                    self.rng.uniform(
                        np.log(self.min_app_rate_bps), np.log(rate_ceiling)
                    )
                )
            )
            times, sizes = self._emit_flow(size, app_rate)
            times += round(starts[flow_id] * SECOND)
            all_times.append(times)
            all_flows.append(np.full(len(times), flow_id, dtype=np.int64))
            all_sizes.append(sizes)
        times = np.concatenate(all_times)
        order = np.argsort(times, kind="stable")
        return PacketTrace(
            times=times[order],
            flows=np.concatenate(all_flows)[order],
            sizes=np.concatenate(all_sizes)[order],
        )

    def _emit_flow(self, size: int, app_rate_bps: float) -> tuple[np.ndarray, np.ndarray]:
        packet_times: list[int] = []
        packet_sizes: list[int] = []
        clock = 0.0
        sent = 0
        line_gap = self.packet_bytes * 8 * SECOND / self.line_rate_bps
        while sent < size:
            burst = min(self.burst_bytes, size - sent)
            packets = -(-burst // self.packet_bytes)
            for index in range(packets):
                length = min(self.packet_bytes, burst - index * self.packet_bytes)
                packet_times.append(round(clock + index * line_gap))
                packet_sizes.append(length)
            sent += burst
            # Application pacing: time until the next burst keeps the flow's
            # long-run rate at app_rate (with 2x jitter for realism).
            mean_gap = burst * 8 * SECOND / app_rate_bps
            clock += float(self.rng.uniform(0.5, 1.5)) * mean_gap
        return (
            np.array(packet_times, dtype=np.int64),
            np.array(packet_sizes, dtype=np.int64),
        )


# ---------------------------------------------------------------------------
# Trace analysis.
# ---------------------------------------------------------------------------


def flowlet_sizes(trace: PacketTrace, gap: int) -> np.ndarray:
    """Split the trace into flowlets at inactivity ``gap``; return their sizes.

    A flowlet is a maximal run of same-flow packets whose inter-packet gaps
    are all ≤ ``gap`` (§2.6).  With ``gap`` larger than any flow's internal
    pause this degenerates to whole flows — the "Flow (250ms)" curve of
    Figure 5.
    """
    if gap <= 0:
        raise ValueError(f"gap must be positive, got {gap}")
    sizes: list[int] = []
    order = np.lexsort((trace.times, trace.flows))
    flows = trace.flows[order]
    times = trace.times[order]
    packet_sizes = trace.sizes[order]
    new_flow = np.empty(len(flows), dtype=bool)
    new_flow[0] = True
    new_flow[1:] = flows[1:] != flows[:-1]
    gap_break = np.empty(len(flows), dtype=bool)
    gap_break[0] = True
    gap_break[1:] = (times[1:] - times[:-1]) > gap
    boundary = new_flow | gap_break
    group = np.cumsum(boundary) - 1
    totals = np.zeros(group[-1] + 1, dtype=np.int64)
    np.add.at(totals, group, packet_sizes)
    return totals


def byte_weighted_cdf(
    sizes: np.ndarray, probe_points: np.ndarray
) -> np.ndarray:
    """Fraction of bytes in transfers ≤ each probe size (Fig. 5's y-axis)."""
    if len(sizes) == 0:
        raise ValueError("no transfers to analyze")
    order = np.argsort(sizes)
    sorted_sizes = sizes[order].astype(np.float64)
    cumulative = np.cumsum(sorted_sizes)
    total = cumulative[-1]
    indices = np.searchsorted(sorted_sizes, probe_points, side="right")
    return np.where(indices > 0, cumulative[np.maximum(indices - 1, 0)], 0.0) / total


def byte_median_size(sizes: np.ndarray) -> float:
    """The transfer size below which half of all bytes lie."""
    order = np.argsort(sizes)
    sorted_sizes = sizes[order].astype(np.float64)
    cumulative = np.cumsum(sorted_sizes)
    index = int(np.searchsorted(cumulative, cumulative[-1] / 2.0))
    return float(sorted_sizes[min(index, len(sorted_sizes) - 1)])


def concurrency_per_window(
    trace: PacketTrace, window: int = MILLISECOND
) -> np.ndarray:
    """Distinct flows seen in each ``window`` of the trace (§2.6.1)."""
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    if len(trace.times) == 0:
        return np.empty(0, dtype=np.int64)
    buckets = (trace.times - trace.times[0]) // window
    pairs = np.stack([buckets, trace.flows], axis=1)
    unique_pairs = np.unique(pairs, axis=0)
    counts = np.bincount(unique_pairs[:, 0].astype(np.int64))
    return counts[counts > 0]


#: The three inactivity gaps plotted in Figure 5.
FIGURE5_GAPS = {
    "flow-250ms": 250 * MILLISECOND,
    "flowlet-500us": 500 * MICROSECOND,
    "flowlet-100us": 100 * MICROSECOND,
}


__all__ = [
    "FIGURE5_GAPS",
    "PacketTrace",
    "SyntheticTraceGenerator",
    "byte_median_size",
    "byte_weighted_cdf",
    "concurrency_per_window",
    "flowlet_sizes",
]
