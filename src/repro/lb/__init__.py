"""Load balancing schemes: ECMP, CONGA, CONGA-Flow, CAFT, local, spraying."""

from repro.lb.base import SelectorFactory, UplinkSelector
from repro.lb.caft import CaftSelector
from repro.lb.centralized import CentralizedScheduler, CentralizedSelector
from repro.lb.conga import CongaFlowSelector, CongaSelector, LocalAwareSelector
from repro.lb.ecmp import (
    EcmpSelector,
    PacketSpraySelector,
    WeightedRandomSelector,
    ecmp_hash,
)

__all__ = [
    "CaftSelector",
    "CentralizedScheduler",
    "CentralizedSelector",
    "CongaFlowSelector",
    "CongaSelector",
    "EcmpSelector",
    "LocalAwareSelector",
    "PacketSpraySelector",
    "SelectorFactory",
    "UplinkSelector",
    "WeightedRandomSelector",
    "ecmp_hash",
]
