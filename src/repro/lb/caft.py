"""CAFT: congestion-aware fault tolerance for 3-tier Clos fabrics.

CONGA's feedback loop spans leaf-to-leaf paths, so in a multi-pod fabric a
failed or black-holed spine↔core link creates asymmetry the leaves cannot
attribute to a path: forward packets through the dead link never reach the
destination leaf, its Congestion-From-Leaf cells keep round-robining the
*pre-fault* metric back, and the source's Congestion-To-Leaf table keeps
refreshing with stale-but-low values — CONGA keeps optimistically sending
flowlets into the hole.  CAFT (arXiv:2010.00720) argues congestion-aware
balancing needs an explicit fault-awareness signal in three tiers.

:class:`CaftSelector` implements that as a CONGA extension:

* the §3.5 rule ``min over uplinks of max(local, remote)`` is weighted by
  each path's *residual capacity* — the product of the uplink's own
  liveness/loss/rate residual and the downstream switch's
  :meth:`~repro.switch.spine.SpineSwitch.path_health` toward the
  destination leaf (which, at a pod spine, folds in core-uplink and
  core-switch health).  This models CAFT's fault-notification control
  plane: leaves route around faults their DREs cannot see;
* when feedback for a path goes stale (the Congestion-To-Leaf cell's age
  exceeds ``2 × metric_age_time``), the decayed-to-optimistic metric is no
  longer trusted: the path is penalized below every fresh path, except for
  one *accelerated re-probe* flowlet per probe interval so recovery is
  still detected (§3.3's re-probing, sped up and made explicit);
* pod spines reweight their core uplinks the same way instead of blind
  ECMP hashing — see
  :meth:`repro.topology.multipod.PodSpineSwitch.enable_fault_aware_core_lb`,
  installed by the scheme's post-setup hook.

On a healthy fabric every weight is 1.0 and no cell is stale, so the
decision rule reduces exactly to CONGA's (same argmin set, same
prefer-previous tie rule); only the tie-break RNG stream differs
(``caft-{leaf}`` instead of ``conga-{leaf}``).

Whenever the weighting *overrides* the congestion argmin — the chosen
uplink's raw CONGA metric is not minimal — the decision increments the
``lb.caft.fault_reroutes`` counter and emits a fault-category
:class:`~repro.obs.events.FaultRerouted` trace event.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.params import CongaParams, DEFAULT_PARAMS
from repro.lb.base import SelectorFactory
from repro.lb.conga import CongaSelector
from repro.obs.events import FaultRerouted

if TYPE_CHECKING:
    from repro.switch.fabric import Fabric
    from repro.switch.leaf import LeafSwitch
    from repro.sim import Simulator


class CaftSelector(CongaSelector):
    """CONGA's flowlet rule with liveness weighting and stale re-probing."""

    name = "caft"

    def __init__(self, leaf: "LeafSwitch", params: CongaParams = DEFAULT_PARAMS) -> None:
        super().__init__(leaf, params)
        # Own tie-break stream; named streams are independent by name, so
        # the parent's (now unused) conga-{leaf} stream draws nothing.
        self._rng = leaf.sim.rng(f"caft-{leaf.leaf_id}")
        #: Decisions where liveness weighting overrode the congestion choice.
        self.fault_reroutes = 0
        # Feedback older than this is stale: 2 × metric_age_time is when
        # §3.3's linear decay bottoms out at the optimistic zero.
        self._stale_after = 2 * params.metric_age_time
        # One re-probe flowlet per stale path per interval.
        self._probe_interval = 4 * params.metric_age_time
        self._last_probe: dict[tuple[int, int], int] = {}

    def path_weight(self, dst_leaf: int, uplink: int) -> float:
        """Residual capacity of path ``uplink`` toward ``dst_leaf`` in [0, 1].

        The uplink's own residual (down/black-holed/degraded) times the
        next-hop switch's health toward the destination — the liveness
        signal CAFT's control plane distributes, queried here directly from
        fabric state.
        """
        leaf = self.leaf
        return (
            leaf.uplinks[uplink].residual_fraction()
            * leaf.uplink_spine[uplink].path_health(dst_leaf)
        )

    def _decide(
        self, dst_leaf: int, candidates: list[int], previous: int, flow_id: int = -1
    ) -> int:
        leaf = self.leaf
        table = leaf.to_leaf_table
        now = leaf.sim.now
        local_metrics = [leaf.local_metric(uplink) for uplink in candidates]
        remote_metrics = [table.metric(dst_leaf, uplink) for uplink in candidates]
        metrics = [max(lo, rm) for lo, rm in zip(local_metrics, remote_metrics)]
        # Anything beyond the metric range outranks every healthy path.
        stale_penalty = float(self.params.max_metric + 1)
        healths: list[float] = []
        scores: list[float] = []
        probing: list[bool] = []
        for uplink, metric in zip(candidates, metrics):
            health = self.path_weight(dst_leaf, uplink)
            healths.append(health)
            if health <= 0.0:
                scores.append(float("inf"))
                probing.append(False)
                continue
            # Scale the congestion metric by residual capacity rather than
            # flat-penalizing the path: an *idle* degraded path still
            # scores 0 (CONGA's optimism is preserved and a brownout is
            # not over-steered at low load), while under load the same
            # congestion reads ``1/health`` times worse on it.  Dead paths
            # (health 0) were already sunk to inf above.
            score = metric / health
            probe = False
            age = table.age_of(dst_leaf, uplink)
            if age is not None and age > self._stale_after:
                last = self._last_probe.get((dst_leaf, uplink), -1)
                if last >= 0 and now - last < self._probe_interval:
                    # Stale and recently probed: do not trust the decayed
                    # metric; sink below every fresh path.
                    score += stale_penalty
                else:
                    # Accelerated re-probe: let one flowlet test the path
                    # at face value (recorded below only if chosen).
                    probe = True
            scores.append(score)
            probing.append(probe)
        best = min(scores)
        ties = [u for u, s in zip(candidates, scores) if s == best]
        if previous in ties:
            # §3.5 stickiness: a flow only moves if strictly better exists.
            choice = previous
        else:
            choice = ties[int(self._rng.integers(len(ties)))]
        position = candidates.index(choice)
        if probing[position]:
            self._last_probe[(dst_leaf, choice)] = now
        congestion_best = min(metrics)
        if metrics[position] > congestion_best:
            # Fault awareness, not congestion, steered this flowlet.
            self.fault_reroutes += 1
            tracer = leaf.sim.tracer
            if tracer is not None and tracer.fault:
                congestion_choice = candidates[metrics.index(congestion_best)]
                tracer.emit(
                    FaultRerouted(
                        time=now,
                        node=leaf.name,
                        dst_leaf=dst_leaf,
                        flow_id=flow_id,
                        chosen=choice,
                        congestion_choice=congestion_choice,
                        candidates=tuple(candidates),
                        metrics=tuple(metrics),
                        healths=tuple(healths),
                    )
                )
        return choice

    @classmethod
    def factory(cls, params: CongaParams = DEFAULT_PARAMS) -> SelectorFactory:
        """Factory binding a CONGA parameter block."""
        return lambda leaf: cls(leaf, params)


def enable_fault_awareness(sim: "Simulator", fabric: "Fabric") -> None:
    """Scheme post-setup hook: make pod spines fault-aware too.

    On a :class:`~repro.topology.multipod.MultiPodFabric` every pod spine
    swaps blind inter-pod ECMP for caft's weighted flowlet choice; on a
    2-tier fabric there is nothing to install and the leaves' weighting
    alone carries the scheme.
    """
    for spine in fabric.spines:
        enable = getattr(spine, "enable_fault_aware_core_lb", None)
        if enable is not None:
            enable()


__all__ = ["CaftSelector", "enable_fault_awareness"]
