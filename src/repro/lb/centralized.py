"""A Hedera-style centralized flow scheduler (the paper's design-space foil).

§2.2 argues distributed load balancing beats centralized scheduling in
datacenters because traffic is too volatile for a controller's reaction
time: "the Hedera scheduler runs every 5 seconds; it would need to run
every 100 ms to approach the performance of a distributed solution".  To
make that argument testable, this module implements the centralized design
point faithfully enough to measure its reaction-time sensitivity:

* every leaf runs a :class:`CentralizedSelector` — ECMP by default, but
  honouring per-flow *pins* installed by the controller, and keeping byte
  counters per flow for elephant detection (Hedera detects flows exceeding
  10% of NIC rate);
* a :class:`CentralizedScheduler` wakes every ``interval``, collects the
  elephants fabric-wide, estimates their demands from the observed bytes,
  and runs global first-fit: largest elephant first, each is pinned to the
  uplink whose 2-hop path (leaf uplink + spine's downlinks toward the
  destination leaf) has the most spare estimated capacity.

The ablation benchmark sweeps ``interval`` to reproduce the argument: a
controller at 100 ms is no better than ECMP for flows that live less than
its period, while millisecond-scale rescheduling approaches CONGA.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.lb.base import UplinkSelector
from repro.lb.ecmp import ecmp_hash
from repro.net.packet import Packet
from repro.sim.kernel import PeriodicTimer
from repro.units import milliseconds

if TYPE_CHECKING:
    from repro.sim import Simulator
    from repro.switch.fabric import Fabric
    from repro.switch.leaf import LeafSwitch


class CentralizedSelector(UplinkSelector):
    """ECMP plus controller-installed per-flow pins."""

    name = "central"

    def __init__(self, leaf: "LeafSwitch") -> None:
        super().__init__(leaf)
        self.pinned: dict[tuple, int] = {}
        self.flow_bytes: dict[tuple, int] = {}
        self.flow_dst_leaf: dict[tuple, int] = {}

    def choose_uplink(self, packet: Packet, dst_leaf: int, candidates: list[int]) -> int:
        key = packet.five_tuple
        self.flow_bytes[key] = self.flow_bytes.get(key, 0) + packet.size
        self.flow_dst_leaf[key] = dst_leaf
        pin = self.pinned.get(key)
        if pin is not None and pin in candidates:
            return pin
        index = ecmp_hash(key, salt=self.leaf.leaf_id)
        return candidates[index % len(candidates)]

    def drain_counters(self) -> dict[tuple, tuple[int, int]]:
        """Return and reset {flow: (bytes since last drain, dst leaf)}."""
        observed = {
            key: (size, self.flow_dst_leaf[key])
            for key, size in sorted(self.flow_bytes.items())
        }
        self.flow_bytes.clear()
        self.flow_dst_leaf.clear()
        return observed


class CentralizedScheduler:
    """Periodically re-pins elephant flows with global first-fit.

    Parameters
    ----------
    interval:
        Controller period.  Hedera's published deployment used 5 s; the
        paper's argument is about how small this must get.
    elephant_fraction:
        A flow is an elephant if its observed rate over the last interval
        exceeds this fraction of the host access rate (Hedera uses 10%).
    """

    def __init__(
        self,
        sim: "Simulator",
        fabric: "Fabric",
        *,
        interval: int = milliseconds(10),
        elephant_fraction: float = 0.1,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if not 0.0 < elephant_fraction <= 1.0:
            raise ValueError(f"bad elephant fraction {elephant_fraction}")
        self.sim = sim
        self.fabric = fabric
        self.interval = interval
        self.elephant_fraction = elephant_fraction
        for leaf in fabric.leaves:
            if not isinstance(leaf.selector, CentralizedSelector):
                raise ValueError(
                    f"{leaf.name} does not run a CentralizedSelector"
                )
        self.rounds = 0
        self.pins_installed = 0
        self._timer = PeriodicTimer(sim, interval, self._reschedule, start=True)

    def stop(self) -> None:
        """Stop the controller."""
        self._timer.stop()

    # -- scheduling ----------------------------------------------------------------

    def _reschedule(self) -> None:
        self.rounds += 1
        elephants: list[tuple[int, "LeafSwitch", tuple, int]] = []
        previous_pins: dict[tuple[int, tuple], int] = {}
        for leaf in self.fabric.leaves:
            selector = leaf.selector
            assert isinstance(selector, CentralizedSelector)
            for key, pin in sorted(selector.pinned.items()):
                previous_pins[(leaf.leaf_id, key)] = pin
            selector.pinned.clear()
            host_rate = min(
                self.fabric.hosts[h].nic.rate_bps
                for h in self.fabric.hosts_under(leaf.leaf_id)
            )
            threshold_bytes = (
                self.elephant_fraction * host_rate * self.interval / (8 * 1e9)
            )
            # Sorted by flow key: ties in the first-fit order below must not
            # depend on the order flows first sent a packet this interval.
            for key, (size, dst_leaf) in sorted(selector.drain_counters().items()):
                if size >= threshold_bytes:
                    elephants.append((size, leaf, key, dst_leaf))
        if not elephants:
            return
        # Hedera's *natural demand* estimation: an elephant's achieved rate
        # always fits whatever bottleneck it is squeezed into, so placement
        # by observed rate never moves anything.  Estimate instead what the
        # flow would get if only its source NIC constrained it: the NIC rate
        # max-min shared among that host's elephants.
        per_source: dict[int, int] = {}
        for _size, _leaf, key, _dst in elephants:
            per_source[key[0]] = per_source.get(key[0], 0) + 1
        # Largest observed first (greedy first-fit order).
        elephants.sort(key=lambda item: -item[0])
        uplink_load: dict[tuple[int, int], float] = {}
        spine_load: dict[tuple[int, int], float] = {}
        for size, leaf, key, dst_leaf in elephants:
            observed = size * 8 * 1e9 / self.interval
            source_host = self.fabric.hosts.get(key[0])
            if source_host is not None:
                natural = source_host.nic.rate_bps / per_source[key[0]]
            else:
                natural = observed
            rate = max(observed, natural)
            candidates = leaf.candidate_uplinks(dst_leaf)
            if not candidates:
                continue
            def headroom_of(uplink: int) -> float:
                spine = leaf.uplink_spine[uplink]
                up_capacity = leaf.uplinks[uplink].rate_bps
                down_ports = spine.ports_to_leaf(dst_leaf)
                down_capacity = sum(spine.ports[i].rate_bps for i in down_ports)
                return min(
                    up_capacity - uplink_load.get((leaf.leaf_id, uplink), 0.0),
                    down_capacity
                    - spine_load.get((spine.spine_id, dst_leaf), 0.0),
                )

            # Placement stability: keep the current pin while its path still
            # fits the demand — moving a live flow reorders its packets, so
            # Hedera only migrates flows off overloaded paths.
            best = previous_pins.get((leaf.leaf_id, key))
            if best not in candidates or headroom_of(best) < rate:
                best = max(candidates, key=headroom_of)
            spine = leaf.uplink_spine[best]
            uplink_load[(leaf.leaf_id, best)] = (
                uplink_load.get((leaf.leaf_id, best), 0.0) + rate
            )
            spine_load[(spine.spine_id, dst_leaf)] = (
                spine_load.get((spine.spine_id, dst_leaf), 0.0) + rate
            )
            selector = leaf.selector
            assert isinstance(selector, CentralizedSelector)
            selector.pinned[key] = best
            self.pins_installed += 1


__all__ = ["CentralizedScheduler", "CentralizedSelector"]
