"""CONGA and related congestion-aware uplink selectors.

:class:`CongaSelector` is the paper's mechanism (§3.5): on the first packet
of each flowlet, pick the uplink minimizing ``max(local DRE metric,
remote Congestion-To-Leaf metric)``; among ties prefer the uplink cached in
the (expired) flowlet entry so a flow only moves when a strictly better path
exists, otherwise pick uniformly at random.  Subsequent packets of an active
flowlet reuse the cached uplink.

:class:`CongaFlowSelector` is CONGA-Flow from §5: identical logic with a
flowlet timeout larger than any path latency, i.e. one congestion-aware
decision per flow.

:class:`LocalAwareSelector` is the strawman of §2.4 (Flare/LocalFlow-style):
flowlet switching driven by *local* DRE metrics only.  With asymmetry it is
provably worse than ECMP because TCP's control loop makes the uplink feeding
the slow path look idle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.flowlet import FlowletTable
from repro.core.params import CONGA_FLOW_PARAMS, CongaParams, DEFAULT_PARAMS
from repro.lb.base import SelectorFactory, UplinkSelector
from repro.net.packet import Packet
from repro.obs.events import FlowletRerouted

if TYPE_CHECKING:
    from repro.switch.leaf import LeafSwitch


class CongaSelector(UplinkSelector):
    """The CONGA decision logic of §3.5 (flowlets + global congestion)."""

    name = "conga"

    def __init__(self, leaf: "LeafSwitch", params: CongaParams = DEFAULT_PARAMS) -> None:
        super().__init__(leaf)
        self.params = params
        self.flowlets = FlowletTable(leaf.sim, params)
        self._rng = leaf.sim.rng(f"conga-{leaf.leaf_id}")
        self.decisions = 0

    def path_metric(self, dst_leaf: int, uplink: int) -> int:
        """max(local congestion on ``uplink``, remote metric of its paths)."""
        local = self.leaf.local_metric(uplink)
        remote = self.leaf.to_leaf_table.metric(dst_leaf, uplink)
        return max(local, remote)

    def choose_uplink(self, packet: Packet, dst_leaf: int, candidates: list[int]) -> int:
        entry = self.flowlets.lookup(packet.five_tuple)
        if entry.valid and entry.port in candidates:
            return entry.port
        choice = self._decide(
            dst_leaf, candidates, previous=entry.port, flow_id=packet.flow_id
        )
        self.flowlets.install(entry, choice)
        self.decisions += 1
        return choice

    def _decide(
        self, dst_leaf: int, candidates: list[int], previous: int, flow_id: int = -1
    ) -> int:
        leaf = self.leaf
        table = leaf.to_leaf_table
        local_metrics = [leaf.local_metric(uplink) for uplink in candidates]
        remote_metrics = [table.metric(dst_leaf, uplink) for uplink in candidates]
        metrics = [max(lo, rm) for lo, rm in zip(local_metrics, remote_metrics)]
        best = min(metrics)
        ties = [u for u, m in zip(candidates, metrics) if m == best]
        if previous in ties:
            # §3.5: a flow only moves if a strictly better uplink exists.
            choice = previous
        else:
            choice = ties[int(self._rng.integers(len(ties)))]
        tracer = leaf.sim.tracer
        if tracer is not None and tracer.flowlet:
            tracer.emit(
                FlowletRerouted(
                    time=leaf.sim.now,
                    leaf=leaf.leaf_id,
                    dst_leaf=dst_leaf,
                    flow_id=flow_id,
                    chosen=choice,
                    previous=previous,
                    candidates=tuple(candidates),
                    local_metrics=tuple(local_metrics),
                    remote_metrics=tuple(remote_metrics),
                )
            )
        return choice

    @classmethod
    def factory(cls, params: CongaParams = DEFAULT_PARAMS) -> SelectorFactory:
        """Factory binding a CONGA parameter block."""
        return lambda leaf: cls(leaf, params)


class CongaFlowSelector(CongaSelector):
    """CONGA-Flow (§5): one congestion-aware decision per flow."""

    name = "conga-flow"

    def __init__(self, leaf: "LeafSwitch", params: CongaParams = CONGA_FLOW_PARAMS) -> None:
        super().__init__(leaf, params)

    @classmethod
    def factory(cls, params: CongaParams = CONGA_FLOW_PARAMS) -> SelectorFactory:
        """Factory binding the CONGA-Flow parameter block."""
        return lambda leaf: cls(leaf, params)


class LocalAwareSelector(UplinkSelector):
    """Flowlet switching on *local* uplink congestion only (§2.4 strawman)."""

    name = "local"

    def __init__(self, leaf: "LeafSwitch", params: CongaParams = DEFAULT_PARAMS) -> None:
        super().__init__(leaf)
        self.params = params
        self.flowlets = FlowletTable(leaf.sim, params)
        self._rng = leaf.sim.rng(f"local-{leaf.leaf_id}")

    def choose_uplink(self, packet: Packet, dst_leaf: int, candidates: list[int]) -> int:
        entry = self.flowlets.lookup(packet.five_tuple)
        if entry.valid and entry.port in candidates:
            return entry.port
        metrics = [self.leaf.local_metric(uplink) for uplink in candidates]
        best = min(metrics)
        ties = [u for u, m in zip(candidates, metrics) if m == best]
        if entry.port in ties:
            choice = entry.port
        else:
            choice = ties[int(self._rng.integers(len(ties)))]
        self.flowlets.install(entry, choice)
        return choice

    @classmethod
    def factory(cls, params: CongaParams = DEFAULT_PARAMS) -> SelectorFactory:
        """Factory binding a parameter block."""
        return lambda leaf: cls(leaf, params)


__all__ = ["CongaFlowSelector", "CongaSelector", "LocalAwareSelector"]
