"""Uplink-selection policy interface for leaf switches.

A leaf switch delegates the *choice of uplink* for each fabric-bound packet
to an :class:`UplinkSelector`.  Everything else — overlay encapsulation, CE
marking, leaf-to-leaf feedback — is common plumbing in
:class:`repro.switch.leaf.LeafSwitch` and runs regardless of the policy, so
schemes differ only in this one decision, exactly as in Figure 1's design
tree.

Selectors are created per leaf via a :class:`SelectorFactory` so that an
experiment config can say "all leaves run CONGA with these parameters".
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Callable

from repro.net.packet import Packet

if TYPE_CHECKING:
    from repro.switch.leaf import LeafSwitch

SelectorFactory = Callable[["LeafSwitch"], "UplinkSelector"]


class UplinkSelector(ABC):
    """Chooses the uplink (LBTag) for each packet entering the fabric."""

    #: Human-readable scheme name used in results tables.
    name = "base"

    def __init__(self, leaf: "LeafSwitch") -> None:
        self.leaf = leaf

    @abstractmethod
    def choose_uplink(self, packet: Packet, dst_leaf: int, candidates: list[int]) -> int:
        """Return the uplink index to carry ``packet`` toward ``dst_leaf``.

        ``candidates`` is the non-empty list of uplink indices that are
        currently up and can reach ``dst_leaf``; the returned value must be
        one of them.
        """


__all__ = ["SelectorFactory", "UplinkSelector"]
