"""Static hash-based schemes: ECMP, per-packet spraying, weighted random.

ECMP is the baseline the paper measures against: a per-flow hash pins every
flow to one uplink with no congestion awareness.  Per-packet spraying (DRB
[10] style) and static weighted random (oblivious routing, §2.4) are the
other congestion-oblivious points in the design space.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.lb.base import SelectorFactory, UplinkSelector
from repro.net.hashing import stable_hash
from repro.net.packet import Packet

if TYPE_CHECKING:
    from repro.switch.leaf import LeafSwitch


def ecmp_hash(five_tuple: tuple, salt: int = 0) -> int:
    """Deterministic flow hash used by leaves and spines for ECMP.

    Built on :func:`repro.net.hashing.stable_hash` so results are identical
    in every interpreter process (Python randomizes string hashes, and the
    5-tuple carries the protocol name).  ``salt`` decorrelates hashing at
    different switches so a collision at one tier does not persist at the
    next.
    """
    return stable_hash(five_tuple, salt=salt)


class EcmpSelector(UplinkSelector):
    """Per-flow static hashing over the available uplinks."""

    name = "ecmp"

    def choose_uplink(self, packet: Packet, dst_leaf: int, candidates: list[int]) -> int:
        index = ecmp_hash(packet.five_tuple, salt=self.leaf.leaf_id)
        return candidates[index % len(candidates)]

    @classmethod
    def factory(cls) -> SelectorFactory:
        """Factory suitable for experiment configs."""
        return cls


class PacketSpraySelector(UplinkSelector):
    """Per-packet round-robin spraying (congestion-oblivious, optimal split).

    Corresponds to the "Per Packet" leaf of Figure 1's design tree; it needs
    a reordering-tolerant transport to work well and interacts poorly with
    asymmetry (§2.4).
    """

    name = "spray"

    def __init__(self, leaf: "LeafSwitch") -> None:
        super().__init__(leaf)
        self._next = 0

    def choose_uplink(self, packet: Packet, dst_leaf: int, candidates: list[int]) -> int:
        choice = candidates[self._next % len(candidates)]
        self._next += 1
        return choice

    @classmethod
    def factory(cls) -> SelectorFactory:
        """Factory suitable for experiment configs."""
        return cls


class WeightedRandomSelector(UplinkSelector):
    """Static weighted random split (oblivious routing, §2.4).

    Weights are per-uplink and fixed for the experiment; Figure 3's point is
    that no static weight vector is right for every traffic matrix.
    """

    name = "weighted"

    def __init__(self, leaf: "LeafSwitch", weights: list[float]) -> None:
        super().__init__(leaf)
        if len(weights) != len(leaf.uplinks):
            raise ValueError(
                f"need one weight per uplink ({len(leaf.uplinks)}), got {len(weights)}"
            )
        if any(w < 0 for w in weights) or sum(weights) <= 0:
            raise ValueError(f"weights must be non-negative and not all zero: {weights}")
        self.weights = list(weights)
        self._rng = leaf.sim.rng(f"weighted-{leaf.leaf_id}")

    def choose_uplink(self, packet: Packet, dst_leaf: int, candidates: list[int]) -> int:
        live_weights = [self.weights[i] for i in candidates]
        total = sum(live_weights)
        if total <= 0:
            return candidates[0]
        probabilities = [w / total for w in live_weights]
        return candidates[self._rng.choice(len(candidates), p=probabilities)]

    @classmethod
    def factory(cls, weights: list[float]) -> SelectorFactory:
        """Factory binding a fixed weight vector."""
        return lambda leaf: cls(leaf, weights)


__all__ = [
    "EcmpSelector",
    "PacketSpraySelector",
    "WeightedRandomSelector",
    "ecmp_hash",
]
