"""Stdin/stdout sweep worker (the far end of the ``subprocess`` backend).

``python -m repro.runner.worker`` speaks a line-oriented JSON protocol on
stdin/stdout — the shape an SSH-launched remote worker would speak, which
is why the transport is pipes and text rather than something richer:

* ``{"op": "init", "workloads": [{"name": ..., "points": [[size, cdf], ...]}]}``
  registers runtime-defined workload CDFs (scenario-inline workloads are
  not importable in a fresh process) → ``{"ok": true, "op": "init"}``.
* ``{"op": "run", "id": N, "spec": "<base64 pickle>"}`` executes one
  :class:`~repro.apps.ExperimentSpec` → ``{"id": N, "ok": true,
  "result": "<base64 pickle>"}`` on success, or ``{"id": N, "ok": false,
  "kind": "exception", "error": "..."}`` when the point raises.
* ``{"op": "ping"}`` → ``{"ok": true, "op": "pong"}`` (liveness probe).
* ``{"op": "exit"}`` acknowledges and terminates.

One request is in flight at a time per worker; parallelism comes from the
backend running several workers.  Results are bit-identical to inline
execution — a point run is a pure function of its spec — so the backend
choice can never change what a sweep computes.
"""

from __future__ import annotations

import base64
import json
import pickle
import sys
from typing import IO, Any

from repro.workloads import FlowSizeDistribution, register_workload


def _describe(exc: BaseException) -> str:
    return f"{type(exc).__name__}: {exc}" if str(exc) else type(exc).__name__


def _reply(out: IO[str], payload: dict[str, Any]) -> None:
    out.write(json.dumps(payload, separators=(",", ":")) + "\n")
    out.flush()


def _handle_init(message: dict[str, Any], out: IO[str]) -> None:
    try:
        for item in message.get("workloads") or []:
            register_workload(
                FlowSizeDistribution(
                    str(item["name"]),
                    tuple(
                        (float(size), float(cdf))
                        for size, cdf in item["points"]
                    ),
                )
            )
    except Exception as exc:
        _reply(
            out,
            {"ok": False, "op": "init", "kind": "exception",
             "error": _describe(exc)},
        )
        return
    _reply(out, {"ok": True, "op": "init"})


def _handle_run(message: dict[str, Any], out: IO[str]) -> None:
    ident = message.get("id")
    try:
        spec = pickle.loads(base64.b64decode(message["spec"]))
        result = spec.run()
        blob = base64.b64encode(
            pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        ).decode("ascii")
    except Exception as exc:
        _reply(
            out,
            {"id": ident, "ok": False, "kind": "exception",
             "error": _describe(exc)},
        )
        return
    _reply(out, {"id": ident, "ok": True, "result": blob})


def serve(stdin: IO[str] | None = None, stdout: IO[str] | None = None) -> int:
    """Process protocol messages until ``exit`` or EOF; returns exit code.

    Malformed lines get a structured ``kind: "protocol"`` error reply
    rather than killing the worker — the backend decides whether to keep
    using it.
    """
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    for line in stdin:
        line = line.strip()
        if not line:
            continue
        try:
            message = json.loads(line)
            if not isinstance(message, dict):
                raise ValueError(f"expected an object, got {message!r}")
        except ValueError as exc:
            _reply(
                stdout,
                {"ok": False, "kind": "protocol",
                 "error": f"bad message: {_describe(exc)}"},
            )
            continue
        op = message.get("op")
        if op == "exit":
            _reply(stdout, {"ok": True, "op": "exit"})
            return 0
        if op == "ping":
            _reply(stdout, {"ok": True, "op": "pong"})
        elif op == "init":
            _handle_init(message, stdout)
        elif op == "run":
            _handle_run(message, stdout)
        else:
            _reply(
                stdout,
                {"ok": False, "kind": "protocol",
                 "error": f"unknown op {op!r}"},
            )
    return 0


def main() -> int:
    """Entry point for ``python -m repro.runner.worker``."""
    return serve()


if __name__ == "__main__":
    sys.exit(main())
