"""Parallel sweep execution over declarative experiment specs.

Every figure in the paper is a sweep — N schemes × M loads × seeds — and
each point is an independent, deterministic function of its
:class:`ExperimentSpec`.  :func:`run_sweep` exploits exactly that: cache
hits are served from :class:`ResultCache`, misses fan out over a
``ProcessPoolExecutor`` (or run inline with ``workers=0``), and results
come back in input order, bit-identical regardless of worker count because
every random draw inside a point comes from the spec's own seed via named
RNG streams and process-stable hashing.

Sweep construction helpers:

* :func:`sweep_grid` — the cartesian product builder for the common
  "schemes × loads × seeds over one scenario template" shape;
* :func:`derive_seeds` — deterministic replicate seeds derived from a base
  seed with the same named-stream discipline the simulator uses, so seed
  lists are reproducible across machines and processes.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, Executor, ProcessPoolExecutor, wait
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.apps.spec import ExperimentSpec, PointResult
from repro.net.hashing import stable_string_seed
from repro.runner.cache import DEFAULT_CACHE_DIR, ResultCache

ProgressFn = Callable[[str], None]
ExecutorFactory = Callable[[int], Executor]


def derive_seeds(base_seed: int, count: int, stream: str = "sweep-seeds") -> list[int]:
    """``count`` deterministic replicate seeds derived from ``base_seed``.

    Extends the simulator's named-RNG-stream discipline to sweep
    construction: the stream name is hashed process-stably, so the same
    (base_seed, stream) pair yields the same seed list on any machine, in
    any process.  Seeds are positive 31-bit ints, safe for ``Simulator``.
    """
    if count < 1:
        raise ValueError(f"need at least one seed, got {count}")
    sequence = np.random.SeedSequence((base_seed, stable_string_seed(stream)))
    state = sequence.generate_state(count, dtype=np.uint64)
    return [int(value % (1 << 31)) or 1 for value in state]


def sweep_grid(
    template: ExperimentSpec,
    *,
    schemes: Sequence[str] | None = None,
    loads: Sequence[float] | None = None,
    seeds: Sequence[int] | None = None,
    workloads: Sequence[str] | None = None,
) -> list[ExperimentSpec]:
    """The cartesian product of the given axes over a scenario template.

    Axes left as ``None`` keep the template's value.  Order is
    seed-major → workload → load → scheme, matching how the figure
    benchmarks tabulate (all schemes of one load adjacent).
    """
    specs = []
    for seed in seeds if seeds is not None else [template.seed]:
        for workload in workloads if workloads is not None else [template.workload]:
            for load in loads if loads is not None else [template.load]:
                for scheme in schemes if schemes is not None else [template.scheme]:
                    specs.append(
                        template.with_(
                            scheme=scheme, workload=workload, load=load, seed=seed
                        )
                    )
    return specs


@dataclass(frozen=True)
class SweepResult:
    """Results of one sweep, in input order, plus execution accounting."""

    points: tuple[PointResult, ...]
    executed: int
    cached: int
    wall_seconds: float

    def __iter__(self):
        return iter(self.points)

    def __len__(self) -> int:
        return len(self.points)

    def point(self, **filters) -> PointResult:
        """The unique point whose spec matches all ``filters`` exactly.

        ``sweep.point(scheme="conga", load=0.6)`` is the lookup the figure
        benchmarks do; raises if the filters match zero or several points.
        """
        matches = self.select(**filters)
        if len(matches) != 1:
            raise LookupError(
                f"filters {filters!r} matched {len(matches)} points, expected 1"
            )
        return matches[0]

    def select(self, **filters) -> list[PointResult]:
        """All points whose spec fields equal the given filter values."""
        return [
            point
            for point in self.points
            if all(
                getattr(point.spec, name) == value
                for name, value in filters.items()
            )
        ]

    @property
    def events_executed(self) -> int:
        """Total simulator events across executed (non-cached) points."""
        return sum(p.events_executed for p in self.points if not p.from_cache)

    @property
    def all_cached(self) -> bool:
        """Whether every point was served from the cache."""
        return self.executed == 0 and len(self.points) > 0


def _execute_point(spec: ExperimentSpec) -> PointResult:
    """Worker entry point: run one spec (module-level, hence picklable)."""
    return spec.run()


def _point_line(index: int, total: int, result: PointResult) -> str:
    if result.from_cache:
        return f"[{index + 1}/{total}] {result.spec.label()}: cached"
    return (
        f"[{index + 1}/{total}] {result.spec.label()}: "
        f"{result.wall_seconds:.2f}s wall, {result.events_executed} events, "
        f"{result.events_per_sec / 1e3:.0f}k ev/s"
    )


def run_sweep(
    specs: Iterable[ExperimentSpec],
    *,
    workers: int | None = None,
    cache: ResultCache | str | os.PathLike | None = DEFAULT_CACHE_DIR,
    progress: ProgressFn | None = None,
    executor_factory: ExecutorFactory | None = None,
) -> SweepResult:
    """Run every spec, in parallel, through the result cache.

    Parameters
    ----------
    workers:
        ``None`` — one worker per CPU; ``0`` or ``1`` — run misses inline
        in this process (no executor, no pickling); ``n > 1`` — a
        ``ProcessPoolExecutor`` with ``n`` workers.  The answer is
        bit-identical in all modes.
    cache:
        A :class:`ResultCache`, a directory path for one, or ``None`` to
        disable caching entirely.
    progress:
        Optional callable receiving one human-readable line per completed
        point (wall clock, events executed, events/sec, cache hits).
    executor_factory:
        Test seam: builds the executor for parallel misses.  Defaults to
        ``ProcessPoolExecutor``.  Never called when every point is served
        from cache or when running inline.
    """
    specs = list(specs)
    if not specs:
        return SweepResult(points=(), executed=0, cached=0, wall_seconds=0.0)
    if cache is not None and not isinstance(cache, ResultCache):
        cache = ResultCache(cache)
    if workers is None:
        workers = os.cpu_count() or 1
    started = perf_counter()  # repro-lint: ignore[D101] -- sweep wall time, reporting only
    total = len(specs)

    results: list[PointResult | None] = [None] * total
    misses: list[int] = []
    duplicates: dict[int, int] = {}
    seen: dict[str, int] = {}
    for index, spec in enumerate(specs):
        cached = cache.get(spec) if cache is not None else None
        if cached is not None:
            results[index] = cached
            if progress is not None:
                progress(_point_line(index, total, cached))
            continue
        first = seen.setdefault(spec.content_hash(), index)
        if first != index:
            duplicates[index] = first  # identical spec earlier in the sweep
        else:
            misses.append(index)

    def finish(index: int, result: PointResult) -> None:
        results[index] = result
        if cache is not None and not result.from_cache:
            cache.put(specs[index], result)
        if progress is not None:
            progress(_point_line(index, total, result))

    if misses and workers <= 1:
        for index in misses:
            finish(index, _execute_point(specs[index]))
    elif misses:
        factory = executor_factory or (
            lambda n: ProcessPoolExecutor(max_workers=n)
        )
        with factory(min(workers, len(misses))) as pool:
            futures = {
                pool.submit(_execute_point, specs[index]): index
                for index in misses
            }
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    finish(futures[future], future.result())

    for index, first in duplicates.items():
        results[index] = results[first]

    executed = len(misses)
    return SweepResult(
        points=tuple(results),  # type: ignore[arg-type]
        executed=executed,
        cached=total - executed - len(duplicates),
        wall_seconds=perf_counter() - started,  # repro-lint: ignore[D101] -- reporting only
    )


__all__ = [
    "SweepResult",
    "derive_seeds",
    "run_sweep",
    "sweep_grid",
]
