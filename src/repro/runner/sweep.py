"""Sweep construction, results, and the local process-pool machinery.

Every figure in the paper is a sweep — N schemes × M loads × seeds — and
each point is an independent, deterministic function of its
:class:`ExperimentSpec`.  The entry points live in
:mod:`repro.runner.dispatch` (:func:`run_sweep` and the
:class:`Dispatcher`/backend API); this module holds what they build on:
cache hits are served from :class:`ResultCache`, misses fan out over a
``ProcessPoolExecutor`` (or run inline with ``workers=0``), and results
come back in input order, bit-identical regardless of worker count because
every random draw inside a point comes from the spec's own seed via named
RNG streams and process-stable hashing.

The pool dispatcher survives its own failures (the fault-plane PR's second half):
a point that raises is retried with deterministic exponential backoff and
then reported as a structured :class:`PointFailure`; a point that exceeds
the per-point wall-clock ``timeout`` has its workers killed and the pool
rebuilt; a worker process that dies (``BrokenProcessPool``) marks the
in-flight points as *suspects*, rebuilds the pool for the untouched queue,
and afterwards re-runs each suspect alone in a fresh single-worker pool so
the culprit is identified without a crasher ever executing in this
process.  A sweep therefore always returns one entry per spec.

Sweep construction helpers:

* :func:`sweep_grid` — the cartesian product builder for the common
  "schemes × loads × seeds over one scenario template" shape;
* :func:`derive_seeds` — deterministic replicate seeds derived from a base
  seed with the same named-stream discipline the simulator uses, so seed
  lists are reproducible across machines and processes.
"""

from __future__ import annotations

import os
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Executor,
    Future,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass
from time import perf_counter, sleep
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.apps.spec import ExperimentSpec, PointResult
from repro.net.hashing import stable_string_seed
from repro.obs.metrics import MetricsRegistry, MetricsReport
from repro.runner.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.runner.failures import PointFailure

ProgressFn = Callable[[str], None]
ExecutorFactory = Callable[[int], Executor]

#: How often the dispatcher wakes to check per-point deadlines (seconds).
_POLL_SECONDS = 0.25


def derive_seeds(base_seed: int, count: int, stream: str = "sweep-seeds") -> list[int]:
    """``count`` deterministic replicate seeds derived from ``base_seed``.

    Extends the simulator's named-RNG-stream discipline to sweep
    construction: the stream name is hashed process-stably, so the same
    (base_seed, stream) pair yields the same seed list on any machine, in
    any process.  Seeds are positive 31-bit ints, safe for ``Simulator``.
    """
    if count < 1:
        raise ValueError(f"need at least one seed, got {count}")
    sequence = np.random.SeedSequence((base_seed, stable_string_seed(stream)))
    state = sequence.generate_state(count, dtype=np.uint64)
    return [int(value % (1 << 31)) or 1 for value in state]


def sweep_grid(
    template: ExperimentSpec,
    *,
    schemes: Sequence[str] | None = None,
    loads: Sequence[float] | None = None,
    seeds: Sequence[int] | None = None,
    workloads: Sequence[str] | None = None,
) -> list[ExperimentSpec]:
    """The cartesian product of the given axes over a scenario template.

    Axes left as ``None`` keep the template's value.  Order is
    seed-major → workload → load → scheme, matching how the figure
    benchmarks tabulate (all schemes of one load adjacent).
    """
    specs = []
    for seed in seeds if seeds is not None else [template.seed]:
        for workload in workloads if workloads is not None else [template.workload]:
            for load in loads if loads is not None else [template.load]:
                for scheme in schemes if schemes is not None else [template.scheme]:
                    specs.append(
                        template.with_(
                            scheme=scheme, workload=workload, load=load, seed=seed
                        )
                    )
    return specs


@dataclass(frozen=True)
class SweepResult:
    """Results of one sweep, in input order, plus execution accounting.

    ``points`` holds a :class:`PointResult` per successful spec and a
    :class:`PointFailure` per spec that exhausted its retries — always one
    entry per input spec, in input order.
    """

    points: tuple[PointResult | PointFailure, ...]
    executed: int
    cached: int
    wall_seconds: float
    #: Sweep-runner accounting under ``sweep.*`` dotted names (cache hits,
    #: retries, timeouts, crashes, pool rebuilds, ...); None only for the
    #: degenerate empty sweep.
    metrics: MetricsReport | None = None

    def __iter__(self):
        return iter(self.points)

    def __len__(self) -> int:
        return len(self.points)

    @property
    def failures(self) -> list[PointFailure]:
        """Points that failed after exhausting their retries."""
        return [p for p in self.points if isinstance(p, PointFailure)]

    def point(self, **filters) -> PointResult:
        """The unique point whose spec matches all ``filters`` exactly.

        ``sweep.point(scheme="conga", load=0.6)`` is the lookup the figure
        benchmarks do; raises if the filters match zero or several points.
        """
        matches = self.select(**filters)
        if len(matches) != 1:
            raise LookupError(
                f"filters {filters!r} matched {len(matches)} points, expected 1"
            )
        return matches[0]

    def select(self, **filters) -> list[PointResult]:
        """All points whose spec fields equal the given filter values."""
        return [
            point
            for point in self.points
            if all(
                getattr(point.spec, name) == value
                for name, value in filters.items()
            )
        ]

    @property
    def events_executed(self) -> int:
        """Total simulator events across executed (non-cached) points."""
        return sum(
            p.events_executed
            for p in self.points
            if isinstance(p, PointResult) and not p.from_cache
        )

    @property
    def all_cached(self) -> bool:
        """Whether every point was served from the cache."""
        return self.executed == 0 and len(self.points) > 0

    def digest(self) -> str:
        """A stable digest of *what was computed*, not how.

        Hashes each point's spec content hash together with the
        :func:`~repro.analysis.fct.records_digest` of its flow records
        (or the failure kind for failed points).  Cache hits, worker
        counts, and dispatch backends are invisible to it — the
        determinism contract says the same specs yield the same records
        everywhere, and this is the number that checks it.
        """
        import hashlib

        from repro.analysis.fct import records_digest

        hasher = hashlib.sha256()
        for point in self.points:
            hasher.update(point.spec.content_hash().encode())
            if isinstance(point, PointFailure):
                hasher.update(f"FAILED:{point.kind}".encode())
            else:
                hasher.update(records_digest(list(point.records)).encode())
        return hasher.hexdigest()


def _execute_point(spec: ExperimentSpec) -> PointResult:
    """Worker entry point: run one spec (module-level, hence picklable)."""
    return spec.run()


def _point_line(index: int, total: int, result: PointResult) -> str:
    if result.from_cache:
        return f"[{index + 1}/{total}] {result.spec.label()}: cached"
    return (
        f"[{index + 1}/{total}] {result.spec.label()}: "
        f"{result.wall_seconds:.2f}s wall, {result.events_executed} events, "
        f"{result.events_per_sec / 1e3:.0f}k ev/s"
    )


def _failure_line(index: int, total: int, failure: PointFailure) -> str:
    return (
        f"[{index + 1}/{total}] {failure.spec.label()}: "
        f"FAILED ({failure.kind}, attempt {failure.attempts}): {failure.error}"
    )


def _describe(exc: BaseException) -> str:
    return f"{type(exc).__name__}: {exc}" if str(exc) else type(exc).__name__


def _backoff(retry_backoff: float, failure_count: int) -> None:
    """Deterministic exponential backoff before a retry (no jitter)."""
    if retry_backoff > 0.0:
        sleep(retry_backoff * (2.0 ** (failure_count - 1)))


def _terminate_pool(pool: Executor) -> None:
    """Best-effort kill of a pool whose work must stop *now* (hung point).

    ``ProcessPoolExecutor`` exposes no supported way to abort running
    tasks, so the worker processes are terminated directly (private
    attribute, guarded) and the pool discarded; the caller rebuilds.
    Executors without worker processes (e.g. thread pools injected through
    the ``executor_factory`` test seam) just get a non-blocking shutdown.
    """
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except Exception:
            pass
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass


class _PoolDispatcher:
    """Manual dispatch of sweep points over a rebuildable process pool.

    Keeps at most ``width`` points in flight so a submission's wall clock
    starts when its work starts — which is what makes the per-point
    ``timeout`` fair — and owns the failure machinery: retry accounting,
    pool-break suspect handling, timeout kills, and the inline fallback
    when no executor can be built at all.
    """

    def __init__(
        self,
        specs: list[ExperimentSpec],
        misses: list[int],
        *,
        width: int,
        factory: ExecutorFactory,
        timeout: float | None,
        retries: int,
        retry_backoff: float,
        max_rebuilds: int,
        finish: Callable[[int, PointResult], None],
        fail: Callable[[int, PointFailure], None],
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.specs = specs
        self.queue: deque[int] = deque(misses)
        self.width = width
        self.factory = factory
        self.timeout = timeout
        self.retries = retries
        self.retry_backoff = retry_backoff
        self.max_rebuilds = max_rebuilds
        self.finish = finish
        self.fail = fail
        self.metrics = metrics
        self.failures: dict[int, int] = dict.fromkeys(misses, 0)
        self.spent: dict[int, float] = dict.fromkeys(misses, 0.0)
        self.suspects: list[int] = []
        self.rebuilds = 0
        self.pool: Executor | None = None
        self.in_flight: dict[Future, int] = {}
        self.deadlines: dict[Future, float | None] = {}
        self.started: dict[Future, float] = {}

    # -- failure accounting ---------------------------------------------------

    def _point_failure(self, index: int, kind: str, error: str) -> None:
        self.fail(
            index,
            PointFailure(
                spec=self.specs[index],
                error=error,
                kind=kind,
                attempts=max(1, self.failures[index]),
                wall_seconds=self.spent[index],
            ),
        )

    def _charge(self, index: int, kind: str, error: str) -> bool:
        """Charge one failed attempt; True if the point may retry."""
        self.failures[index] += 1
        if self.metrics is not None:
            self.metrics.counter(f"sweep.{kind}s").value += 1
        if self.failures[index] > self.retries:
            self._point_failure(index, kind, error)
            return False
        if self.metrics is not None:
            self.metrics.counter("sweep.retries").value += 1
        _backoff(self.retry_backoff, self.failures[index])
        return True

    # -- pool lifecycle -------------------------------------------------------

    def _build_pool(self) -> bool:
        try:
            self.pool = self.factory(max(1, min(self.width, len(self.queue) or 1)))
            return True
        except Exception:
            self.pool = None
            return False

    def _drop_pool(self, terminate: bool) -> None:
        if self.pool is None:
            return
        if terminate:
            _terminate_pool(self.pool)
        else:
            try:
                self.pool.shutdown(wait=False, cancel_futures=True)
            except Exception:
                pass
        self.pool = None
        self.in_flight.clear()
        self.deadlines.clear()
        self.started.clear()

    def _drain_inline(self) -> None:
        """Graceful fallback: no usable executor, run queued points inline.

        Suspects are *never* run inline — one of them probably kills its
        process, and inline that process is this one.  With no pool to
        isolate them they fail as crashes.
        """
        while self.queue:
            index = self.queue.popleft()
            outcome = _run_inline(
                self.specs[index],
                retries=self.retries - self.failures[index],
                retry_backoff=self.retry_backoff,
            )
            if isinstance(outcome, PointFailure):
                self.fail(index, outcome)
            else:
                self.finish(index, outcome)
        for index in self.suspects:
            self._point_failure(
                index,
                "crash",
                "worker pool unavailable and point is a crash suspect; "
                "refusing to run it in-process",
            )
        self.suspects.clear()

    def _rebuild_or_drain(self, terminate: bool) -> bool:
        """Replace a dead pool; False means we fell back to inline."""
        self._drop_pool(terminate)
        self.rebuilds += 1
        if self.metrics is not None:
            self.metrics.counter("sweep.pool_rebuilds").value += 1
        if self.rebuilds > self.max_rebuilds or not self._build_pool():
            self._drain_inline()
            return False
        return True

    # -- event handling -------------------------------------------------------

    def _submit_ready(self) -> bool:
        """Fill the pool up to ``width`` in-flight points."""
        assert self.pool is not None
        while self.queue and len(self.in_flight) < self.width:
            index = self.queue.popleft()
            try:
                future = self.pool.submit(_execute_point, self.specs[index])
            except (BrokenExecutor, RuntimeError):
                self.queue.appendleft(index)
                return self._handle_break(extra_victims=())
            now = perf_counter()  # repro-lint: ignore[D101] -- runner wall-clock accounting
            self.in_flight[future] = index
            self.started[future] = now
            self.deadlines[future] = (
                None if self.timeout is None else now + self.timeout
            )
        return True

    def _handle_break(self, extra_victims: tuple[int, ...]) -> bool:
        """The pool broke: in-flight points become suspects, pool rebuilds.

        The culprit is unknowable from here — ``BrokenProcessPool`` fails
        every in-flight future alike — so nobody is charged an attempt
        unless exactly one point was in flight (definitive blame).
        """
        victims = list(extra_victims) + list(self.in_flight.values())
        if len(victims) == 1:
            index = victims[0]
            if self._charge(
                index, "crash", "worker process died while running this point"
            ):
                self.suspects.append(index)
        else:
            self.suspects.extend(victims)
        return self._rebuild_or_drain(terminate=False)

    def _handle_timeouts(self, overdue: list[Future]) -> bool:
        """Kill a pool with overdue points; requeue the innocent in-flight.

        The overdue points are charged a ``timeout`` attempt; other
        in-flight points lose their partial work but keep their attempt
        budget.
        """
        retry: list[int] = []
        innocent: list[int] = []
        assert self.timeout is not None
        for future, index in list(self.in_flight.items()):
            self.spent[index] += (
                perf_counter() - self.started[future]  # repro-lint: ignore[D101] -- runner wall-clock accounting
            )
            if future in overdue:
                if self._charge(
                    index,
                    "timeout",
                    f"exceeded the {self.timeout:g}s per-point timeout",
                ):
                    retry.append(index)
            else:
                innocent.append(index)
        self.queue.extend(innocent)
        self.queue.extend(retry)
        return self._rebuild_or_drain(terminate=True)

    def _handle_done(self, future: Future) -> bool:
        index = self.in_flight.pop(future)
        self.spent[index] += (
            perf_counter() - self.started.pop(future)  # repro-lint: ignore[D101] -- runner wall-clock accounting
        )
        self.deadlines.pop(future, None)
        try:
            result = future.result()
        except BrokenExecutor:
            return self._handle_break(extra_victims=(index,))
        except Exception as exc:
            if self._charge(index, "exception", _describe(exc)):
                self.queue.append(index)
            return True
        self.finish(index, result)
        return True

    # -- main loop ------------------------------------------------------------

    def run(self) -> None:
        """Execute every miss; on return each index has a result or failure."""
        if not self._build_pool():
            self._drain_inline()
            return
        try:
            while self.queue or self.in_flight:
                if self.pool is None:
                    # Inline drain already resolved everything left.
                    return
                if not self._submit_ready():
                    continue
                if not self.in_flight:
                    continue
                wait(
                    list(self.in_flight),
                    timeout=None if self.timeout is None else _POLL_SECONDS,
                    return_when=FIRST_COMPLETED,
                )
                done = [f for f in self.in_flight if f.done()]
                intact = True
                for future in done:
                    if future not in self.in_flight:
                        continue  # a break handler already cleared the slot
                    intact = self._handle_done(future)
                    if not intact:
                        break  # pool rebuilt or drained; done list is stale
                if not intact or self.pool is None:
                    continue
                if self.timeout is not None and not done:
                    now = perf_counter()  # repro-lint: ignore[D101] -- runner wall-clock accounting
                    overdue = [
                        f
                        for f, deadline in self.deadlines.items()
                        if deadline is not None
                        and now > deadline
                        and f in self.in_flight
                        and not f.done()
                    ]
                    if overdue:
                        self._handle_timeouts(overdue)
            self._resolve_suspects()
        finally:
            if self.pool is not None:
                self.pool.shutdown(wait=True)
                self.pool = None

    # -- suspect resolution ---------------------------------------------------

    def _resolve_suspects(self) -> None:
        """Re-run each pool-break suspect alone in a fresh one-worker pool.

        Solo execution makes blame definitive: if the pool breaks again
        only this point can be the crasher, and it is charged and retried
        until its budget runs out; an innocent point simply completes.
        Suspects never run inline — a crasher would take this process with
        it.
        """
        for index in self.suspects:
            self._resolve_one_suspect(index)
        self.suspects.clear()

    def _resolve_one_suspect(self, index: int) -> None:
        while True:
            start = perf_counter()  # repro-lint: ignore[D101] -- runner wall-clock accounting
            try:
                solo = self.factory(1)
            except Exception as exc:
                self.failures[index] = max(1, self.failures[index])
                self._point_failure(
                    index, "crash", f"could not build a solo executor: {_describe(exc)}"
                )
                return
            kind = error = None
            result = None
            try:
                future = solo.submit(_execute_point, self.specs[index])
                deadline = None if self.timeout is None else start + self.timeout
                while not future.done():
                    wait([future], timeout=_POLL_SECONDS)
                    if (
                        deadline is not None
                        and not future.done()
                        and perf_counter() > deadline  # repro-lint: ignore[D101] -- runner wall-clock accounting
                    ):
                        _terminate_pool(solo)
                        kind, error = (
                            "timeout",
                            f"exceeded the {self.timeout:g}s per-point timeout",
                        )
                        break
                if kind is None:
                    try:
                        result = future.result()
                    except BrokenExecutor:
                        kind, error = "crash", "worker process died while running this point"
                    except Exception as exc:
                        kind, error = "exception", _describe(exc)
            finally:
                try:
                    solo.shutdown(wait=False, cancel_futures=True)
                except Exception:
                    pass
            self.spent[index] += perf_counter() - start  # repro-lint: ignore[D101] -- runner wall-clock accounting
            if kind is None:
                assert result is not None
                self.finish(index, result)
                return
            if not self._charge(index, kind, error):
                return


def _run_inline(
    spec: ExperimentSpec,
    *,
    retries: int,
    retry_backoff: float,
    metrics: MetricsRegistry | None = None,
) -> PointResult | PointFailure:
    """Run one spec in this process with exception retries.

    Timeouts are not enforceable inline (there is no worker to kill) and a
    genuinely crashing point takes the process down — inline mode trades
    those protections for zero pickling overhead.
    """
    failure_count = 0
    started = perf_counter()  # repro-lint: ignore[D101] -- runner wall-clock accounting
    while True:
        try:
            return _execute_point(spec)
        except Exception as exc:
            failure_count += 1
            if metrics is not None:
                metrics.counter("sweep.exceptions").value += 1
            if failure_count > max(0, retries):
                return PointFailure(
                    spec=spec,
                    error=_describe(exc),
                    kind="exception",
                    attempts=failure_count,
                    wall_seconds=perf_counter() - started,  # repro-lint: ignore[D101] -- reporting only
                )
            if metrics is not None:
                metrics.counter("sweep.retries").value += 1
            _backoff(retry_backoff, failure_count)


__all__ = [
    "SweepResult",
    "derive_seeds",
    "sweep_grid",
]
