"""Structured failure results for the crash-tolerant sweep runner.

A sweep always returns one entry per spec: points that could not be
executed — worker exception after retries, wall-clock timeout, or a worker
process that died — come back as :class:`PointFailure` values in their
input-order slot instead of aborting the whole sweep.  Failures are never
written to the result cache, so a later sweep retries them from scratch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.apps.spec import ExperimentSpec

#: The three ways a point can fail.
FAILURE_KINDS = ("exception", "timeout", "crash")


@dataclass(frozen=True)
class PointFailure:
    """One spec's terminal failure after all retries were exhausted.

    ``kind`` is ``"exception"`` (the point raised), ``"timeout"`` (it
    exceeded the sweep's per-point wall-clock budget), or ``"crash"`` (its
    worker process died — segfault, ``os._exit``, OOM kill).  ``attempts``
    counts executions actually charged to this spec; innocent in-flight
    points re-queued after a pool break are not charged.
    """

    spec: "ExperimentSpec"
    error: str
    kind: str
    attempts: int
    wall_seconds: float

    def __post_init__(self) -> None:
        if self.kind not in FAILURE_KINDS:
            raise ValueError(
                f"kind must be one of {FAILURE_KINDS}, got {self.kind!r}"
            )
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")

    # Mirrors of PointResult's spec accessors so SweepResult.select() and
    # table-building code can filter failures and successes uniformly.
    @property
    def scheme(self) -> str:
        """Scheme name of the failed spec."""
        return self.spec.scheme

    @property
    def workload(self) -> str:
        """Workload name of the failed spec."""
        return self.spec.workload

    @property
    def load(self) -> float:
        """Offered load of the failed spec."""
        return self.spec.load

    @property
    def from_cache(self) -> bool:
        """Failures are never cached."""
        return False


__all__ = ["FAILURE_KINDS", "PointFailure"]
