"""Sweep health telemetry: a structured NDJSON progress stream.

The per-point ``progress`` lines of :mod:`repro.runner.dispatch` are for
humans; this module is the machine-readable counterpart.  A
:class:`TelemetrySink` receives one small JSON event per sweep lifecycle
transition — ``sweep_started``, ``cache_hit``, ``point_completed``,
``point_failed``, ``worker_restart``, ``sweep_finished`` — and appends it
as one NDJSON line to a file (or hands it to a callable, for tests and
live consumers).  Lines are written line-buffered, so ``tail -f`` on the
sink path follows a long sweep in real time.

Telemetry is reporting-only and advisory: events carry wall-clock
durations (sweeps are wall-clock creatures; simulations are not), a
monotonic ``seq``, and spec identity (index, label, content hash), but
nothing here feeds back into execution and a sink failure never fails a
sweep.  The companion aggregates land in the run's
:class:`~repro.obs.metrics.MetricsRegistry` (``sweep.point_wall_seconds``
histogram, ``sweep.worker_restarts`` counter) and therefore in
``SweepResult.metrics``.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Any, Callable, IO


class TelemetrySink:
    """Thread-safe NDJSON event sink for sweep health telemetry.

    Construct with a path (file is truncated and line-buffered) or a
    callable receiving each event dict.  ``emit`` never raises: a broken
    pipe or full disk degrades telemetry, not the sweep.
    """

    __slots__ = ("emitted", "_emit_fn", "_stream", "_lock", "_seq", "_closed")

    def __init__(
        self, target: str | os.PathLike | Callable[[dict[str, Any]], None]
    ) -> None:
        self.emitted = 0
        self._seq = 0
        self._lock = threading.Lock()
        self._closed = False
        self._stream: IO[str] | None = None
        self._emit_fn: Callable[[dict[str, Any]], None] | None = None
        if callable(target):
            self._emit_fn = target
        else:
            self._stream = Path(target).open("w", buffering=1)

    def emit(self, event: str, /, **fields: Any) -> None:
        """Record one event; silently drops on sink errors or after close."""
        with self._lock:
            if self._closed:
                return
            payload: dict[str, Any] = {"event": event, "seq": self._seq}
            payload.update(fields)
            self._seq += 1
            try:
                if self._emit_fn is not None:
                    self._emit_fn(payload)
                else:
                    assert self._stream is not None
                    self._stream.write(
                        json.dumps(payload, sort_keys=True, separators=(",", ":"))
                        + "\n"
                    )
            except Exception:
                return
            self.emitted += 1

    def close(self) -> None:
        """Flush and close the underlying stream (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._stream is not None:
                try:
                    self._stream.close()
                except Exception:
                    pass


def as_sink(
    telemetry: TelemetrySink
    | str
    | os.PathLike
    | Callable[[dict[str, Any]], None]
    | None,
) -> TelemetrySink | None:
    """Coerce the user-facing ``telemetry=`` argument into a sink (or None)."""
    if telemetry is None or isinstance(telemetry, TelemetrySink):
        return telemetry
    return TelemetrySink(telemetry)


__all__ = ["TelemetrySink", "as_sink"]
