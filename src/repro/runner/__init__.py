"""Parallel sweep runner: dispatchers, backends, caching, determinism.

Build :class:`repro.apps.ExperimentSpec` points (by hand, with
:func:`sweep_grid` / :func:`derive_seeds`, or by compiling a
:class:`repro.scenarios.Scenario`), then run them:

* :func:`run_sweep` — the one-call API: cache scan, duplicate dedupe,
  parallel execution, a :class:`SweepResult` of picklable
  :class:`repro.apps.PointResult` values in input order.
* :class:`Dispatcher` — the streaming form of the same machinery, with a
  pluggable execution :class:`Backend`: :class:`LocalBackend` (inline or
  a crash-tolerant process pool) or :class:`SubprocessBackend` (worker
  subprocesses over an SSH-shaped stdin/stdout JSON protocol).

Results are bit-identical across all backends and worker counts — a
point run is a pure function of its spec — which
:meth:`SweepResult.digest` makes checkable in one comparison.
"""

from repro.runner.backends import (
    BACKENDS,
    Backend,
    LocalBackend,
    SubprocessBackend,
    get_backend,
)
from repro.runner.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.runner.dispatch import Dispatcher, run_sweep
from repro.runner.failures import FAILURE_KINDS, PointFailure
from repro.runner.sweep import SweepResult, derive_seeds, sweep_grid
from repro.runner.telemetry import TelemetrySink

__all__ = [
    "BACKENDS",
    "Backend",
    "DEFAULT_CACHE_DIR",
    "Dispatcher",
    "FAILURE_KINDS",
    "LocalBackend",
    "PointFailure",
    "ResultCache",
    "SubprocessBackend",
    "SweepResult",
    "TelemetrySink",
    "derive_seeds",
    "get_backend",
    "run_sweep",
    "sweep_grid",
]
