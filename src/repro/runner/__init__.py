"""Parallel sweep runner with deterministic seeding and result caching.

The public surface is small: build :class:`repro.apps.ExperimentSpec`
points (by hand or with :func:`sweep_grid` / :func:`derive_seeds`), hand
them to :func:`run_sweep`, and get a :class:`SweepResult` of picklable
:class:`repro.apps.PointResult` values — in input order, bit-identical
whether run serially or across a process pool, and served from the
on-disk :class:`ResultCache` on repeat runs.
"""

from repro.runner.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.runner.failures import FAILURE_KINDS, PointFailure
from repro.runner.sweep import SweepResult, derive_seeds, run_sweep, sweep_grid

__all__ = [
    "DEFAULT_CACHE_DIR",
    "FAILURE_KINDS",
    "PointFailure",
    "ResultCache",
    "SweepResult",
    "derive_seeds",
    "run_sweep",
    "sweep_grid",
]
