"""On-disk result cache for sweep points.

Results are stored one pickle per point under a cache root (default
``.repro-cache/``), keyed by :meth:`ExperimentSpec.content_hash` — a stable
content address over the full spec plus the ``repro`` package version.
Because a point run is a pure function of its spec, a cache hit is
bit-identical to a fresh execution; a version bump or any spec change
misses by construction.

Writes are atomic (tmp file + ``os.replace``) so a crashed or interrupted
sweep never leaves a half-written entry behind; unreadable entries are
treated as misses and deleted.

Every stored entry gets a sibling ``<hash>.manifest.json`` provenance
record (see :mod:`repro.obs.manifest`): spec hash, seed, faults, git SHA,
package version, wall/sim time, and the run's metrics summary — so any
cached number can be audited without unpickling anything.  Manifests are
best-effort: a failure writing one never fails the sweep.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import replace
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.apps.spec import ExperimentSpec, PointResult

#: Default cache directory, relative to the current working directory.
DEFAULT_CACHE_DIR = ".repro-cache"


class ResultCache:
    """A content-addressed store of :class:`PointResult` pickles."""

    def __init__(self, root: str | os.PathLike = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)

    def path(self, spec: "ExperimentSpec") -> Path:
        """The on-disk location for ``spec``'s result."""
        return self.root / f"{spec.content_hash()}.pkl"

    def get(self, spec: "ExperimentSpec") -> "PointResult | None":
        """The cached result for ``spec``, or None on a miss.

        Hits come back flagged ``from_cache=True``.  A corrupt or
        unreadable entry (interrupted write, format drift) is deleted and
        reported as a miss rather than poisoning the sweep.
        """
        path = self.path(spec)
        try:
            with path.open("rb") as handle:
                result = pickle.load(handle)
        except FileNotFoundError:
            return None
        except Exception:
            # Unpickling arbitrary corrupt bytes can raise nearly anything
            # (UnpicklingError, EOFError, ValueError, AttributeError, ...);
            # whatever it was, the entry is unusable — drop it and miss.
            path.unlink(missing_ok=True)
            return None
        return replace(result, from_cache=True)

    def put(self, spec: "ExperimentSpec", result: "PointResult") -> Path:
        """Atomically store ``result`` under ``spec``'s content hash."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path(spec)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            with tmp.open("wb") as handle:
                pickle.dump(
                    replace(result, from_cache=False),
                    handle,
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
            os.replace(tmp, path)
        except BaseException:
            # A failed serialization (or a kill mid-write) must not leave a
            # partial entry: the final path only ever appears via os.replace,
            # and the tmp file is removed here so crashed sweeps don't litter.
            tmp.unlink(missing_ok=True)
            raise
        try:
            from repro.obs.manifest import write_manifest

            write_manifest(result, self.root, path.stem)
        except Exception:
            # Manifests are provenance sugar; the pickle is the entry.
            pass
        return path

    def clear(self) -> int:
        """Delete every cached entry; returns how many were removed.

        Also sweeps up stale ``*.tmp.*`` files left by writers that were
        killed between opening the tmp file and the atomic rename (those
        do not count toward the return value — they were never entries).
        """
        removed = 0
        if self.root.is_dir():
            for entry in self.root.glob("*.pkl"):
                entry.unlink(missing_ok=True)
                removed += 1
            for stale in self.root.glob("*.tmp.*"):
                stale.unlink(missing_ok=True)
            for manifest in self.root.glob("*.manifest.json"):
                manifest.unlink(missing_ok=True)
        return removed

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.pkl"))


__all__ = ["DEFAULT_CACHE_DIR", "ResultCache"]
