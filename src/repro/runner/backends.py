"""Execution backends: where a dispatched sweep's misses actually run.

A :class:`Backend` receives the sweep's spec list plus the indexes the
cache could not serve, and resolves every one of them through the
``finish``/``fail`` callbacks — exactly once per index, from whatever
thread suits the backend.  Because a point run is a pure function of its
spec, backends are interchangeable: the same misses yield bit-identical
results on any of them (that is what :meth:`SweepResult.digest` checks).

Two backends ship:

* :class:`LocalBackend` — the historical behaviour: inline execution for
  ``workers <= 1``, otherwise the rebuildable ``ProcessPoolExecutor``
  machinery of :mod:`repro.runner.sweep` with its timeout kills, crash
  suspects, and retry accounting.
* :class:`SubprocessBackend` — shards the queue across long-lived
  ``python -m repro.runner.worker`` child processes over an SSH-shaped
  stdin/stdout JSON protocol.  The command is configurable, so pointing
  it at ``ssh host python -m repro.runner.worker`` is a one-line change.
"""

from __future__ import annotations

import abc
import base64
import json
import os
import pickle
import subprocess
import sys
import threading
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import Callable, Sequence

from repro.apps.spec import ExperimentSpec, PointResult
from repro.obs.metrics import MetricsRegistry
from repro.runner.failures import PointFailure
from repro.runner.sweep import (
    ExecutorFactory,
    _backoff,
    _PoolDispatcher,
    _run_inline,
)
from repro.runner.telemetry import TelemetrySink
from repro.workloads import BUILTIN_WORKLOAD_NAMES, WORKLOADS

FinishFn = Callable[[int, PointResult], None]
FailFn = Callable[[int, PointFailure], None]


class Backend(abc.ABC):
    """Executes a sweep's cache misses; the pluggable half of dispatch.

    ``execute`` must call ``finish(index, result)`` or
    ``fail(index, failure)`` exactly once for every index in ``misses``
    before returning.  Callbacks are thread-safe on the dispatcher side;
    backends may invoke them from worker threads.  ``telemetry``, when
    given, is the sweep's health-event sink: backends with their own
    worker lifecycle report it there (``worker_restart`` events).
    """

    #: Registry name (``--backend`` value on the CLI).
    name: str = "?"

    @abc.abstractmethod
    def execute(
        self,
        specs: Sequence[ExperimentSpec],
        misses: list[int],
        *,
        finish: FinishFn,
        fail: FailFn,
        metrics: MetricsRegistry | None = None,
        telemetry: TelemetrySink | None = None,
    ) -> None:
        """Run ``specs[i]`` for every ``i`` in ``misses``."""


@dataclass
class LocalBackend(Backend):
    """In-process execution: inline for ``workers <= 1``, else a pool.

    This is :func:`repro.runner.run_sweep`'s historical engine unchanged —
    per-point timeouts, deterministic retry backoff, pool rebuilds after
    crashes, and solo re-runs of crash suspects all live in
    :class:`repro.runner.sweep._PoolDispatcher`.
    """

    workers: int | None = None
    executor_factory: ExecutorFactory | None = None
    timeout: float | None = None
    retries: int = 1
    retry_backoff: float = 0.5
    max_executor_rebuilds: int = 3

    name = "local"

    def execute(
        self,
        specs: Sequence[ExperimentSpec],
        misses: list[int],
        *,
        finish: FinishFn,
        fail: FailFn,
        metrics: MetricsRegistry | None = None,
        telemetry: TelemetrySink | None = None,
    ) -> None:
        if not misses:
            return
        workers = self.workers if self.workers is not None else os.cpu_count() or 1
        if workers <= 1:
            for index in misses:
                outcome = _run_inline(
                    specs[index],
                    retries=self.retries,
                    retry_backoff=self.retry_backoff,
                    metrics=metrics,
                )
                if isinstance(outcome, PointFailure):
                    fail(index, outcome)
                else:
                    finish(index, outcome)
            return
        factory = self.executor_factory or (
            lambda n: ProcessPoolExecutor(max_workers=n)
        )
        _PoolDispatcher(
            list(specs),
            list(misses),
            width=min(workers, len(misses)),
            factory=factory,
            timeout=self.timeout,
            retries=self.retries,
            retry_backoff=self.retry_backoff,
            max_rebuilds=self.max_executor_rebuilds,
            finish=finish,
            fail=fail,
            metrics=metrics,
        ).run()


def _worker_command() -> list[str]:
    """The default worker invocation (this interpreter, this package)."""
    return [sys.executable, "-u", "-m", "repro.runner.worker"]


def _worker_env() -> dict[str, str]:
    """Child environment with this package importable, whatever the cwd."""
    env = dict(os.environ)
    package_root = str(Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        package_root if not existing
        else package_root + os.pathsep + existing
    )
    return env


def _runtime_workloads() -> list[dict]:
    """Init-handshake payload: workloads registered after import time."""
    return [
        {"name": dist.name, "points": [list(p) for p in dist.points]}
        for name, dist in sorted(WORKLOADS.items())
        if name not in BUILTIN_WORKLOAD_NAMES
    ]


@dataclass
class SubprocessBackend(Backend):
    """Shards misses across worker subprocesses speaking JSON over pipes.

    Each of ``workers`` threads owns one long-lived
    ``python -m repro.runner.worker`` child (or ``command``, for an
    SSH-shaped remote worker) and pulls indexes from a shared queue, so a
    slow point never blocks the others.  A child that dies mid-point is
    charged a ``crash`` attempt against that point (solo blame — one
    request in flight per child) and respawned, up to
    ``max_worker_restarts`` per thread; with every thread's budget
    exhausted, leftover points fail as crashes rather than hanging.

    Runtime-registered workloads (scenario-inline CDFs) are replayed to
    every child through the init handshake, so scenario sweeps behave the
    same here as inline.  Per-point timeouts are not enforced on this
    backend — use :class:`LocalBackend` when runaway points are a risk.
    """

    workers: int = 2
    command: list[str] | None = None
    retries: int = 1
    retry_backoff: float = 0.5
    max_worker_restarts: int = 3

    name = "subprocess"

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"need at least one worker, got {self.workers}")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")

    # -- child process plumbing ----------------------------------------------

    def _spawn(self) -> subprocess.Popen:
        child = subprocess.Popen(
            self.command or _worker_command(),
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            env=_worker_env(),
            text=True,
        )
        try:
            reply = self._send(
                child, {"op": "init", "workloads": _runtime_workloads()}
            )
            if reply is None or not reply.get("ok"):
                error = (reply or {}).get("error", "no init acknowledgement")
                raise RuntimeError(f"worker failed to initialize: {error}")
        except Exception:
            self._kill(child)
            raise
        return child

    @staticmethod
    def _send(child: subprocess.Popen, message: dict) -> dict | None:
        """One request/reply round trip; None when the child is gone."""
        try:
            assert child.stdin is not None and child.stdout is not None
            child.stdin.write(json.dumps(message) + "\n")
            child.stdin.flush()
            line = child.stdout.readline()
        except (OSError, ValueError):
            return None
        if not line:
            return None
        try:
            reply = json.loads(line)
        except json.JSONDecodeError:
            return None  # stream out of sync; unusable child
        return reply if isinstance(reply, dict) else None

    @staticmethod
    def _kill(child: subprocess.Popen) -> None:
        try:
            child.kill()
        except Exception:
            pass
        try:
            child.wait(timeout=5)
        except Exception:
            pass

    @staticmethod
    def _shutdown(child: subprocess.Popen) -> None:
        try:
            assert child.stdin is not None
            child.stdin.write(json.dumps({"op": "exit"}) + "\n")
            child.stdin.flush()
            child.stdin.close()
            child.wait(timeout=5)
        except Exception:
            SubprocessBackend._kill(child)

    # -- execution ------------------------------------------------------------

    def execute(
        self,
        specs: Sequence[ExperimentSpec],
        misses: list[int],
        *,
        finish: FinishFn,
        fail: FailFn,
        metrics: MetricsRegistry | None = None,
        telemetry: TelemetrySink | None = None,
    ) -> None:
        if not misses:
            return
        pending: deque[int] = deque(misses)
        lock = threading.Lock()
        failures: dict[int, int] = dict.fromkeys(misses, 0)
        spent: dict[int, float] = dict.fromkeys(misses, 0.0)

        def charge(index: int, kind: str, error: str) -> bool:
            """Under ``lock``: charge one failed attempt; True = may retry."""
            failures[index] += 1
            if metrics is not None:
                metrics.counter(f"sweep.{kind}s").value += 1
            if failures[index] > self.retries:
                fail(
                    index,
                    PointFailure(
                        spec=specs[index],
                        error=error,
                        kind=kind,
                        attempts=max(1, failures[index]),
                        wall_seconds=spent[index],
                    ),
                )
                return False
            if metrics is not None:
                metrics.counter("sweep.retries").value += 1
            return True

        def run_one(child: subprocess.Popen, index: int):
            """One attempt; returns ("ok", result) | ("error"|"dead", info)."""
            spec = specs[index]
            started = perf_counter()  # repro-lint: ignore[D101] -- runner wall-clock accounting
            blob = base64.b64encode(
                pickle.dumps(spec, protocol=pickle.HIGHEST_PROTOCOL)
            ).decode("ascii")
            reply = self._send(child, {"op": "run", "id": index, "spec": blob})
            with lock:
                spent[index] += perf_counter() - started  # repro-lint: ignore[D101] -- reporting only
            if reply is None or reply.get("id") != index:
                return "dead", None
            if not reply.get("ok"):
                return "error", (
                    reply.get("kind", "exception"),
                    reply.get("error", "worker reported an error"),
                )
            try:
                result = pickle.loads(base64.b64decode(reply["result"]))
            except Exception as exc:
                return "error", (
                    "exception", f"could not decode worker result: {exc}"
                )
            return "ok", result

        def note_restart(restarts: int, index: int, reason: str) -> None:
            """Health accounting for one lost child (under no lock)."""
            if metrics is not None:
                with lock:
                    metrics.counter("sweep.worker_restarts").value += 1
            if telemetry is not None:
                telemetry.emit(
                    "worker_restart",
                    worker=threading.current_thread().name,
                    restarts=restarts,
                    index=index,
                    reason=reason,
                )

        def loop() -> None:
            child: subprocess.Popen | None = None
            restarts = 0
            try:
                while True:
                    with lock:
                        if not pending:
                            return
                        index = pending.popleft()
                    resolved = False
                    while not resolved:
                        if child is None:
                            if restarts > self.max_worker_restarts:
                                with lock:
                                    pending.appendleft(index)
                                return
                            try:
                                child = self._spawn()
                            except Exception:
                                restarts += 1
                                note_restart(restarts, index, "spawn failed")
                                with lock:
                                    pending.appendleft(index)
                                return
                        status, payload = run_one(child, index)
                        if status == "ok":
                            with lock:
                                finish(index, payload)
                            resolved = True
                            continue
                        if status == "dead":
                            self._kill(child)
                            child = None
                            restarts += 1
                            note_restart(restarts, index, "child died mid-point")
                            if metrics is not None:
                                with lock:
                                    metrics.counter(
                                        "sweep.pool_rebuilds"
                                    ).value += 1
                            kind, error = (
                                "crash",
                                "worker process died while running this point",
                            )
                        else:
                            kind, error = payload
                        with lock:
                            may_retry = charge(index, kind, error)
                            attempt = failures[index]
                        if may_retry:
                            _backoff(self.retry_backoff, attempt)
                        else:
                            resolved = True
            finally:
                if child is not None:
                    self._shutdown(child)

        threads = [
            threading.Thread(target=loop, name=f"sweep-worker-{i}")
            for i in range(min(self.workers, len(misses)))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        # Every thread gave up (spawn failures / restart budgets): whatever
        # is still queued fails as a crash instead of hanging the sweep.
        while pending:
            index = pending.popleft()
            fail(
                index,
                PointFailure(
                    spec=specs[index],
                    error="no subprocess worker available to run this point",
                    kind="crash",
                    attempts=max(1, failures[index]),
                    wall_seconds=spent[index],
                ),
            )


#: Registry of backend names to constructors (the CLI's ``--backend``).
BACKENDS: dict[str, type[Backend]] = {
    "local": LocalBackend,
    "subprocess": SubprocessBackend,
}


def get_backend(name: str) -> type[Backend]:
    """Look up a backend class by registry name."""
    backend = BACKENDS.get(name)
    if backend is None:
        known = ", ".join(sorted(BACKENDS))
        raise ValueError(f"unknown backend {name!r}; available: {known}")
    return backend


__all__ = [
    "BACKENDS",
    "Backend",
    "LocalBackend",
    "SubprocessBackend",
    "get_backend",
]
