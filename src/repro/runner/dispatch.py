"""Sweep dispatch: cache scan, backend fan-out, streaming, accounting.

The public runner API.  A :class:`Dispatcher` pairs a result cache with
an execution :class:`~repro.runner.backends.Backend` and runs spec grids
through both: cache hits are served first, duplicate specs are computed
once, misses go to the backend, and every resolution is streamed back
incrementally — as progress lines, as live ``[sweep i/n]`` summary lines
rendered from the run's :class:`~repro.obs.metrics.MetricsRegistry`, or
as actual ``(index, result)`` pairs from :meth:`Dispatcher.stream`.
Manifests ride along for free: every fresh result lands in the cache via
:meth:`ResultCache.put`, which writes the provenance manifest.

:func:`run_sweep` keeps its historical signature as the one-call face of
the same machinery (a :class:`LocalBackend` dispatcher), so existing
benchmarks and tests are untouched by the redesign.
"""

from __future__ import annotations

import os
import queue as queue_module
import threading
from time import perf_counter
from typing import Iterable, Iterator

from repro.apps.spec import ExperimentSpec, PointResult
from repro.obs.metrics import MetricsRegistry
from repro.runner.backends import Backend, LocalBackend, get_backend
from repro.runner.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.runner.failures import PointFailure
from repro.runner.sweep import (
    ExecutorFactory,
    ProgressFn,
    SweepResult,
    _failure_line,
    _point_line,
)
from repro.runner.telemetry import TelemetrySink, as_sink

Outcome = PointResult | PointFailure

TelemetryArg = TelemetrySink | str | os.PathLike | None


class _Run:
    """Mutable state of one dispatched sweep (shared across threads)."""

    def __init__(
        self,
        specs: list[ExperimentSpec],
        cache: ResultCache | None,
        progress: ProgressFn | None,
        summary_every: int,
        telemetry: TelemetrySink | None = None,
    ) -> None:
        self.specs = specs
        self.total = len(specs)
        self.cache = cache
        self.progress = progress
        self.summary_every = summary_every
        self.telemetry = telemetry
        self.registry = MetricsRegistry()
        self.results: list[Outcome | None] = [None] * self.total
        self.misses: list[int] = []
        self.duplicates: dict[int, int] = {}
        self.resolved = 0
        self.lock = threading.RLock()
        self.started = perf_counter()  # repro-lint: ignore[D101] -- sweep wall time, reporting only
        #: Streaming hook: called under the lock with each (index, outcome).
        self.on_outcome = None

    # -- phases ---------------------------------------------------------------

    def scan(self) -> None:
        """Serve cache hits and split the rest into misses + duplicates."""
        if self.telemetry is not None:
            self.telemetry.emit("sweep_started", total=self.total)
        seen: dict[str, int] = {}
        for index, spec in enumerate(self.specs):
            cached = self.cache.get(spec) if self.cache is not None else None
            if cached is not None:
                with self.lock:
                    self.results[index] = cached
                    self.registry.counter("sweep.cache_hits").value += 1
                    if self.telemetry is not None:
                        self.telemetry.emit(
                            "cache_hit",
                            index=index,
                            label=spec.label(),
                            spec_hash=spec.content_hash(),
                        )
                    self._emit(index, cached, _point_line(index, self.total, cached))
                continue
            first = seen.setdefault(spec.content_hash(), index)
            if first != index:
                self.duplicates[index] = first
            else:
                self.misses.append(index)

    def finish(self, index: int, result: PointResult) -> None:
        """Backend callback: one miss computed successfully."""
        with self.lock:
            self.results[index] = result
            if self.cache is not None and not result.from_cache:
                self.cache.put(self.specs[index], result)
            self.registry.counter("sweep.executed").value += 1
            self.registry.histogram("sweep.point_wall_seconds").observe(
                result.wall_seconds
            )
            if self.telemetry is not None:
                spec = self.specs[index]
                self.telemetry.emit(
                    "point_completed",
                    index=index,
                    label=spec.label(),
                    spec_hash=spec.content_hash(),
                    wall_seconds=result.wall_seconds,
                    events_executed=result.events_executed,
                    completed=result.completed,
                )
            self._emit(index, result, _point_line(index, self.total, result))

    def fail(self, index: int, failure: PointFailure) -> None:
        """Backend callback: one miss exhausted its attempts."""
        with self.lock:
            self.results[index] = failure
            self.registry.counter("sweep.executed").value += 1
            self.registry.counter("sweep.failures").value += 1
            if self.telemetry is not None:
                spec = self.specs[index]
                self.telemetry.emit(
                    "point_failed",
                    index=index,
                    label=spec.label(),
                    spec_hash=spec.content_hash(),
                    kind=failure.kind,
                    error=failure.error,
                    attempts=failure.attempts,
                    wall_seconds=failure.wall_seconds,
                )
            self._emit(index, failure, _failure_line(index, self.total, failure))

    def finalize(self) -> SweepResult:
        """Resolve duplicates and freeze the accounting into a result."""
        with self.lock:
            for index, first in self.duplicates.items():
                self.results[index] = self.results[first]
            executed = len(self.misses)
            wall = perf_counter() - self.started  # repro-lint: ignore[D101] -- reporting only
            registry = self.registry
            registry.counter("sweep.points").value = self.total
            registry.counter("sweep.executed").value = executed
            registry.counter("sweep.cache_hits").value = (
                self.total - executed - len(self.duplicates)
            )
            registry.counter("sweep.duplicates").value = len(self.duplicates)
            registry.counter("sweep.failures").value = sum(
                1 for point in self.results if isinstance(point, PointFailure)
            )
            registry.gauge("sweep.wall_seconds").set(wall)
            # Stable health names even on clean runs: restarts default to 0.
            restarts = registry.counter("sweep.worker_restarts").value
            if self.telemetry is not None:
                self.telemetry.emit(
                    "sweep_finished",
                    total=self.total,
                    executed=executed,
                    cached=self.total - executed - len(self.duplicates),
                    duplicates=len(self.duplicates),
                    failures=registry.counter("sweep.failures").value,
                    worker_restarts=restarts,
                    wall_seconds=wall,
                )
            return SweepResult(
                points=tuple(self.results),  # type: ignore[arg-type]
                executed=executed,
                cached=self.total - executed - len(self.duplicates),
                wall_seconds=wall,
                metrics=registry.snapshot(),
            )

    # -- incremental reporting ------------------------------------------------

    def _emit(self, index: int, outcome: Outcome, line: str) -> None:
        """Under the lock: per-point progress, summaries, stream events."""
        self.resolved += 1
        if self.progress is not None:
            self.progress(line)
            if self.summary_every > 0 and (
                self.resolved % self.summary_every == 0
                or self.resolved == self.total - len(self.duplicates)
            ):
                self.progress(self.summary_line())
        if self.on_outcome is not None:
            self.on_outcome(index, outcome)

    def summary_line(self) -> str:
        """A live one-line sweep summary rendered from the metrics registry."""
        executed = self.registry.counter("sweep.executed").value
        hits = self.registry.counter("sweep.cache_hits").value
        failed = self.registry.counter("sweep.failures").value
        wall = perf_counter() - self.started  # repro-lint: ignore[D101] -- reporting only
        parts = [f"{executed - failed} run", f"{hits} cached"]
        if failed:
            parts.append(f"{failed} failed")
        retries = self.registry.counter("sweep.retries").value
        if retries:
            parts.append(f"{retries} retried")
        return (
            f"[sweep {self.resolved}/{self.total}] "
            + " · ".join(parts)
            + f" · {wall:.1f}s"
        )


class Dispatcher:
    """Runs spec grids through a cache and a pluggable execution backend.

    ``backend`` is a :class:`Backend` instance or a registry name
    (``"local"``, ``"subprocess"``) for a default-configured one.
    ``progress`` receives one line per resolved point; with
    ``summary_every=k`` every k-th resolution also emits a live
    ``[sweep i/n] ...`` summary line rendered from the run's metrics.
    ``telemetry`` is an NDJSON health-event sink — a
    :class:`~repro.runner.telemetry.TelemetrySink`, a file path for one,
    or a callable receiving each event dict; the dispatcher emits
    lifecycle events (``sweep_started``, ``cache_hit``,
    ``point_completed``, ``point_failed``, ``sweep_finished``) and the
    backend adds its own (``worker_restart``).  The caller owns closing a
    sink it constructed; path-created sinks are line-buffered, so the
    stream is tailable while the sweep runs.
    """

    def __init__(
        self,
        backend: Backend | str = "local",
        *,
        cache: ResultCache | str | os.PathLike | None = DEFAULT_CACHE_DIR,
        progress: ProgressFn | None = None,
        summary_every: int = 0,
        telemetry: TelemetryArg = None,
    ) -> None:
        if isinstance(backend, str):
            backend = get_backend(backend)()
        self.backend = backend
        if cache is not None and not isinstance(cache, ResultCache):
            cache = ResultCache(cache)
        self.cache = cache
        self.progress = progress
        self.summary_every = summary_every
        self.telemetry = as_sink(telemetry)
        #: The :class:`SweepResult` of the most recent run()/stream().
        self.last_result: SweepResult | None = None

    def _new_run(self, specs: Iterable[ExperimentSpec]) -> _Run:
        return _Run(
            list(specs),
            self.cache,
            self.progress,
            self.summary_every,
            telemetry=self.telemetry,
        )

    def run(self, specs: Iterable[ExperimentSpec]) -> SweepResult:
        """Resolve every spec (cache, dedupe, backend) into a result."""
        run = self._new_run(specs)
        if run.total == 0:
            self.last_result = SweepResult(
                points=(), executed=0, cached=0, wall_seconds=0.0
            )
            return self.last_result
        run.scan()
        if run.misses:
            self.backend.execute(
                run.specs,
                list(run.misses),
                finish=run.finish,
                fail=run.fail,
                metrics=run.registry,
                telemetry=self.telemetry,
            )
        self.last_result = run.finalize()
        return self.last_result

    def stream(
        self, specs: Iterable[ExperimentSpec]
    ) -> Iterator[tuple[int, Outcome]]:
        """Yield ``(index, outcome)`` pairs as points resolve.

        Cache hits come first (in input order), then backend completions
        in completion order while the backend runs in a helper thread,
        then duplicate indexes once their originals exist.  Exactly one
        pair per input spec.  After exhaustion, :attr:`last_result` holds
        the full :class:`SweepResult`.
        """
        run = self._new_run(specs)
        if run.total == 0:
            self.last_result = SweepResult(
                points=(), executed=0, cached=0, wall_seconds=0.0
            )
            return
        outcomes: queue_module.Queue[tuple[int, Outcome]] = queue_module.Queue()
        run.on_outcome = lambda index, outcome: outcomes.put((index, outcome))
        run.scan()
        backend_error: list[BaseException] = []
        worker: threading.Thread | None = None
        if run.misses:
            def pump() -> None:
                try:
                    self.backend.execute(
                        run.specs,
                        list(run.misses),
                        finish=run.finish,
                        fail=run.fail,
                        metrics=run.registry,
                        telemetry=self.telemetry,
                    )
                except BaseException as exc:  # surfaced after drain
                    backend_error.append(exc)

            worker = threading.Thread(target=pump, name="sweep-dispatch")
            worker.start()
        expected = run.total - len(run.duplicates)
        yielded = 0
        while yielded < expected:
            if backend_error:
                break
            try:
                index, outcome = outcomes.get(timeout=0.25)
            except queue_module.Empty:
                continue
            yielded += 1
            yield index, outcome
        if worker is not None:
            worker.join()
        if backend_error:
            raise backend_error[0]
        self.last_result = run.finalize()
        for index in run.duplicates:
            outcome = run.results[index]
            assert outcome is not None
            yield index, outcome


def run_sweep(
    specs: Iterable[ExperimentSpec],
    *,
    workers: int | None = None,
    cache: ResultCache | str | os.PathLike | None = DEFAULT_CACHE_DIR,
    progress: ProgressFn | None = None,
    executor_factory: ExecutorFactory | None = None,
    timeout: float | None = None,
    retries: int = 1,
    retry_backoff: float = 0.5,
    max_executor_rebuilds: int = 3,
    backend: Backend | None = None,
    telemetry: TelemetryArg = None,
) -> SweepResult:
    """Run every spec, in parallel, through the result cache.

    The one-call face of :class:`Dispatcher`.  With ``backend=None`` the
    knobs configure a :class:`LocalBackend` exactly as they always did;
    passing a backend instance (e.g. a configured
    :class:`~repro.runner.backends.SubprocessBackend`) dispatches over it
    instead, and the local-pool knobs are ignored.

    Parameters
    ----------
    workers:
        ``None`` — one worker per CPU; ``0`` or ``1`` — run misses inline
        in this process (no executor, no pickling); ``n > 1`` — a
        ``ProcessPoolExecutor`` with ``n`` workers.  The answer is
        bit-identical in all modes.
    cache:
        A :class:`ResultCache`, a directory path for one, or ``None`` to
        disable caching entirely.  Failures are never cached.
    progress:
        Optional callable receiving one human-readable line per completed
        point (wall clock, events executed, events/sec, cache hits,
        failures).
    executor_factory:
        Test seam: builds the executor for parallel misses.  Defaults to
        ``ProcessPoolExecutor``.  Never called when every point is served
        from cache or when running inline.
    timeout:
        Per-point wall-clock budget in seconds (parallel modes only; the
        clock starts at submission, which manual dispatch keeps equal to
        work start).  An overdue point's workers are killed, the pool is
        rebuilt, innocent in-flight points are requeued without charge,
        and the offender retries or fails with kind ``"timeout"``.
    retries:
        How many times a failing point is re-executed after its first
        failed attempt (total attempts = ``retries + 1``).
    retry_backoff:
        Base of the deterministic exponential backoff slept before each
        retry: attempt *k* waits ``retry_backoff · 2**(k-1)`` seconds.
        0 disables the wait.
    max_executor_rebuilds:
        How many pool rebuilds (crashes + timeout kills) are tolerated
        before falling back to inline execution for queued points (crash
        suspects then fail rather than run in-process).
    backend:
        An explicit :class:`Backend` to dispatch over instead of the
        default local pool.
    telemetry:
        Structured NDJSON health stream: a
        :class:`~repro.runner.telemetry.TelemetrySink`, a path to write
        one event per line to, or a callable receiving each event dict.
        A path-created sink is closed before returning; a sink instance
        stays open (the caller owns it).
    """
    specs = list(specs)
    if not specs:
        return SweepResult(points=(), executed=0, cached=0, wall_seconds=0.0)
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    if timeout is not None and timeout <= 0:
        raise ValueError(f"timeout must be positive, got {timeout}")
    if backend is None:
        backend = LocalBackend(
            workers=workers,
            executor_factory=executor_factory,
            timeout=timeout,
            retries=retries,
            retry_backoff=retry_backoff,
            max_executor_rebuilds=max_executor_rebuilds,
        )
    sink = as_sink(telemetry)
    try:
        return Dispatcher(
            backend, cache=cache, progress=progress, telemetry=sink
        ).run(specs)
    finally:
        if sink is not None and not isinstance(telemetry, TelemetrySink):
            sink.close()


__all__ = ["Dispatcher", "TelemetrySink", "run_sweep"]
