"""Discrete-event simulation kernel.

The kernel is a classic calendar built on a binary heap.  Events are callbacks
scheduled at an integer-nanosecond timestamp; ties are broken by insertion
order so that runs are fully deterministic.  Components interact with the
kernel through :class:`Simulator` (``now``, ``schedule``, ``run``) and through
:class:`Timer` for restartable timeouts (retransmission timers, flowlet age
scans, DRE decay, ...).
"""

from __future__ import annotations

import heapq
from time import perf_counter
from typing import Callable

import numpy as np

from repro.units import SECOND

Callback = Callable[[], None]


class SimulationError(RuntimeError):
    """Raised for scheduling errors such as events in the past."""


class _Event:
    """A calendar entry: ``(time, sequence)`` orders the heap.

    Event push/pop is the simulator's hottest path, so this is a plain
    ``__slots__`` class compared by a ``(time, sequence)`` key rather than a
    ``@dataclass(order=True)`` (which pays field-by-field comparison and
    ``__dict__`` storage per instance).
    """

    __slots__ = ("time", "sequence", "callback", "cancelled")

    def __init__(self, time: int, sequence: int, callback: Callback) -> None:
        self.time = time
        self.sequence = sequence
        self.callback = callback
        self.cancelled = False

    def __lt__(self, other: "_Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.sequence < other.sequence

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"_Event(t={self.time}, seq={self.sequence}{state})"


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed for the experiment.  Every component obtains its own
        independent, named substream via :meth:`rng`, so adding a new
        stochastic component never perturbs the draws of existing ones.
    """

    def __init__(self, seed: int = 1) -> None:
        self._heap: list[_Event] = []
        self._now = 0
        self._sequence = 0
        self._seed = seed
        self._rngs: dict[str, np.random.Generator] = {}
        self._stopped = False
        #: Perf counters: total events executed and wall-clock seconds spent
        #: inside :meth:`run`.  Reporting only — they never influence the
        #: simulation itself, so determinism is unaffected.
        self.events_executed = 0
        self.wall_seconds = 0.0

    # -- time ---------------------------------------------------------------

    @property
    def now(self) -> int:
        """Current simulation time in integer nanoseconds."""
        return self._now

    @property
    def now_seconds(self) -> float:
        """Current simulation time in float seconds (for reporting only)."""
        return self._now / SECOND

    # -- randomness ---------------------------------------------------------

    @property
    def seed(self) -> int:
        """The master seed this simulator was constructed with."""
        return self._seed

    def rng(self, stream: str) -> np.random.Generator:
        """Return the named deterministic random stream for ``stream``.

        Repeated calls with the same name return the same generator, so a
        component can call ``sim.rng("ecmp")`` wherever convenient.
        """
        generator = self._rngs.get(stream)
        if generator is None:
            from repro.net.hashing import stable_string_seed

            seed_seq = np.random.SeedSequence((self._seed, stable_string_seed(stream)))
            generator = np.random.default_rng(seed_seq)
            self._rngs[stream] = generator
        return generator

    # -- scheduling ----------------------------------------------------------

    def schedule(self, delay: int, callback: Callback) -> _Event:
        """Schedule ``callback`` to run ``delay`` ticks from now."""
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: int, callback: Callback) -> _Event:
        """Schedule ``callback`` to run at absolute time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time} before current time {self._now}"
            )
        event = _Event(time, self._sequence, callback)
        self._sequence += 1
        heapq.heappush(self._heap, event)
        return event

    @staticmethod
    def cancel(event: _Event) -> None:
        """Cancel a pending event (lazy deletion)."""
        event.cancelled = True

    # -- execution -----------------------------------------------------------

    def run(self, until: int | None = None, max_events: int | None = None) -> int:
        """Run until the event heap drains, ``until`` is reached, or stopped.

        Returns the simulation time at exit.  ``until`` is an absolute time;
        when it is hit the clock is advanced exactly to it so that subsequent
        ``run`` calls resume cleanly.
        """
        self._stopped = False
        executed = 0
        heap = self._heap
        pop = heapq.heappop
        started = perf_counter()
        try:
            while heap and not self._stopped:
                event = heap[0]
                if event.cancelled:
                    pop(heap)
                    continue
                if until is not None and event.time > until:
                    self._now = until
                    return self._now
                pop(heap)
                self._now = event.time
                event.callback()
                executed += 1
                if max_events is not None and executed >= max_events:
                    break
        finally:
            self.events_executed += executed
            self.wall_seconds += perf_counter() - started
        if until is not None and not heap and self._now < until:
            self._now = until
        return self._now

    def stop(self) -> None:
        """Stop the current :meth:`run` loop after the executing event."""
        self._stopped = True

    @property
    def pending_events(self) -> int:
        """Number of scheduled (possibly cancelled) events still queued."""
        return len(self._heap)

    @property
    def pending_live_events(self) -> int:
        """Number of queued events that are not lazily cancelled.

        Prunes cancelled events off the heap top first, so a heap holding
        *only* cancelled entries reports zero (and frees them) instead of
        making idle-detection loops spin until their timestamps pass.
        Cancelled events buried under live ones are still counted — they are
        discarded cheaply when they surface.
        """
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
        return len(heap)

    @property
    def events_per_sec(self) -> float:
        """Average event throughput of all :meth:`run` calls so far."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.events_executed / self.wall_seconds


class Timer:
    """A restartable one-shot timer bound to a simulator.

    Typical uses: TCP retransmission timers, CONGA metric-aging scans, and
    DRE decay ticks (via :meth:`PeriodicTimer`-style rescheduling in the
    callback).  ``start`` on a running timer restarts it.
    """

    def __init__(self, sim: Simulator, callback: Callback) -> None:
        self._sim = sim
        self._callback = callback
        self._event: _Event | None = None

    @property
    def running(self) -> bool:
        """Whether the timer currently has a pending expiry."""
        return self._event is not None and not self._event.cancelled

    @property
    def expires_at(self) -> int | None:
        """Absolute expiry time, or None if not running."""
        if self.running:
            assert self._event is not None
            return self._event.time
        return None

    def start(self, delay: int) -> None:
        """(Re)arm the timer to fire ``delay`` ticks from now."""
        self.stop()
        self._event = self._sim.schedule(delay, self._fire)

    def stop(self) -> None:
        """Disarm the timer if it is running."""
        if self._event is not None:
            Simulator.cancel(self._event)
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self._callback()


class PeriodicTimer:
    """Fires a callback every ``period`` ticks until stopped.

    Used for DRE multiplicative decay and the flowlet-table age-bit scan,
    both of which the CONGA ASIC implements as free-running hardware timers.
    """

    def __init__(
        self,
        sim: Simulator,
        period: int,
        callback: Callback,
        *,
        start: bool = True,
        jitter_stream: str | None = None,
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self._sim = sim
        self.period = period
        self._callback = callback
        self._event: _Event | None = None
        self._jitter_stream = jitter_stream
        if start:
            self.start()

    @property
    def running(self) -> bool:
        """Whether the periodic timer is active."""
        return self._event is not None

    def start(self) -> None:
        """Start ticking; the first tick occurs one period from now."""
        if self._event is None:
            self._event = self._sim.schedule(self._next_delay(), self._fire)

    def stop(self) -> None:
        """Stop ticking."""
        if self._event is not None:
            Simulator.cancel(self._event)
            self._event = None

    def _next_delay(self) -> int:
        if self._jitter_stream is None:
            return self.period
        rng = self._sim.rng(self._jitter_stream)
        # +/-5% jitter de-synchronizes the many per-port timers, mirroring
        # independent hardware clocks.
        return max(1, round(self.period * rng.uniform(0.95, 1.05)))

    def _fire(self) -> None:
        self._event = self._sim.schedule(self._next_delay(), self._fire)
        self._callback()


def run_until_idle(sim: Simulator, quantum: int = SECOND, max_quanta: int = 10_000) -> int:
    """Drive ``sim`` in fixed quanta until no events remain.

    Convenience for tests and examples that want "run to completion" without
    picking a horizon in advance.  Uses :attr:`Simulator.pending_live_events`
    so a heap holding only cancelled timers (e.g. a disarmed 60 s RTO) counts
    as idle immediately instead of burning one quantum per tick until the
    stale timestamps pass.
    """
    quanta = 0
    while sim.pending_live_events:
        sim.run(until=sim.now + quantum)
        quanta += 1
        if quanta >= max_quanta:
            raise SimulationError("simulation did not go idle within the quanta budget")
    return sim.now


__all__ = [
    "Callback",
    "PeriodicTimer",
    "SimulationError",
    "Simulator",
    "Timer",
    "run_until_idle",
]
