"""Discrete-event simulation kernel.

The scheduler is a two-tier *calendar queue*: a ring of fixed-width time
buckets covers the near future (where almost every event lives — packet
serialization boundaries, propagation delays, RTO restarts), and a binary
heap holds the far-future overflow (long timers, idle-period wakeups).
Events are callbacks scheduled at an integer-nanosecond timestamp; ties are
broken by insertion order so that runs are fully deterministic.  Components
interact with the kernel through :class:`Simulator` (``now``, ``schedule``,
``run``) and through :class:`Timer` for restartable timeouts
(retransmission timers, flowlet age scans, ...).

Hot-path design notes (the evaluation needs millions of events per point):

* Entries are ``(time, sequence, ...)`` tuples, so bucket sorts and heap
  pushes compare integer tuples in C and never call back into Python —
  ``(time, sequence)`` is unique, so trailing elements are never compared.
* The bucket ring gives O(1) scheduling for near-future events: an insert
  is one shift, one subtract, and a ``list.append``.  A bucket is sorted
  *once*, lazily, when the wheel reaches it (near-sorted input, C timsort);
  draining it afterwards is an index increment per event instead of a heap
  sift.  Events landing in the already-active bucket are placed with
  ``bisect.insort`` so the total ``(time, sequence)`` order is preserved
  bit-for-bit against the single-heap implementation.
* The default bucket width (2048 ns, ``bucket_bits=11``) is sized from the
  serialization-delay distribution of the fabric: an MTU-sized frame at
  10 Gbps serializes in ~1.2 µs and propagation is 500 ns, so consecutive
  per-packet events land at most a bucket or two apart and the wheel stays
  dense.  The ring spans ``2**ring_bits`` buckets (~1 ms by default) which
  keeps millisecond-scale retransmission timers on the fast path too.
* Events may carry one ``arg`` delivered to the callback at fire time, so
  per-packet scheduling passes a bound method plus the packet instead of
  allocating a fresh closure per hop.
* :class:`Timer` uses *lazy reprogramming*: restarting a running timer only
  moves a soft deadline; the already-queued entry re-arms itself when it
  surfaces.  A TCP sender restarting its RTO on every ACK therefore costs
  two attribute writes, not a queue insert — while consuming one sequence
  number per restart exactly like the eager implementation did, which keeps
  event tie-breaking (and therefore whole-run results) bit-identical.
  Re-arm bounces are *not* counted in ``events_executed`` (they execute no
  simulation work); they are tracked separately as ``kernel.timer_rearms``
  so the executed-event count of a run is independent of how timers are
  stored — a digest-identical run reports a bit-identical event count.
* The scheduler compacts itself when more than half its entries are lazily
  cancelled, so storms of cancelled timers cannot inflate the pending set
  forever.
"""

from __future__ import annotations

import gc
import heapq
from bisect import insort
from time import perf_counter
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from repro.obs.metrics import MetricsRegistry
from repro.units import SECOND

if TYPE_CHECKING:
    from repro.obs.trace import Tracer

Callback = Callable[[], None]

#: Internal callback shape: zero-argument, or one-argument when scheduled
#: with the ``arg`` fast path.  ``...`` rather than a union so call sites
#: that dispatch on ``arg is None`` type-check under strict mypy.
_AnyCallback = Callable[..., None]


class SimulationError(RuntimeError):
    """Raised for scheduling errors such as events in the past."""


class _Event:
    """A calendar entry and cancellation handle.

    The scheduler orders ``(time, sequence)`` tuples, not these objects; the
    object rides along as the tuple's third element so cancellation stays an
    O(1) flag write.  ``arg`` is delivered to ``callback`` at fire time when
    not None (the no-allocation path for per-packet events).
    """

    __slots__ = ("time", "sequence", "callback", "arg", "cancelled")

    def __init__(
        self, time: int, sequence: int, callback: _AnyCallback, arg: Any = None
    ) -> None:
        self.time = time
        self.sequence = sequence
        self.callback = callback
        self.arg = arg
        self.cancelled = False

    def __lt__(self, other: "_Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.sequence < other.sequence

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"_Event(t={self.time}, seq={self.sequence}{state})"


#: Pending sets smaller than this are never worth compacting.
_COMPACT_FLOOR = 64

#: Default calendar bucket width, as a power of two of nanoseconds.  2048 ns
#: covers the common per-packet event gaps (serialization ~1.2 µs at 10 Gbps,
#: propagation 500 ns) so trains of back-to-back packets stay within one or
#: two buckets.
_BUCKET_BITS = 11

#: Default ring size, as a power of two of buckets.  512 buckets at 2048 ns
#: give a ~1 ms fast-path horizon — wide enough that minimum-RTO
#: retransmission timers schedule O(1) instead of through the overflow heap.
_RING_BITS = 9

#: Sentinel "no deadline" horizon for :meth:`Simulator.run`'s ``until``.
_FAR = 1 << 62


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed for the experiment.  Every component obtains its own
        independent, named substream via :meth:`rng`, so adding a new
        stochastic component never perturbs the draws of existing ones.
    bucket_bits:
        log2 of the calendar bucket width in nanoseconds.
    ring_bits:
        log2 of the number of calendar buckets; the fast-path horizon is
        ``2 ** (bucket_bits + ring_bits)`` nanoseconds.
    """

    def __init__(
        self, seed: int = 1, *, bucket_bits: int = _BUCKET_BITS, ring_bits: int = _RING_BITS
    ) -> None:
        if bucket_bits < 0 or ring_bits <= 0:
            raise ValueError(
                f"bucket_bits/ring_bits must be sane, got {bucket_bits}/{ring_bits}"
            )
        # Calendar state.  Entries are (time, sequence, event) for
        # cancellable events and (time, sequence, None, callback, arg) for
        # the no-handle fast path; (time, sequence) is unique so tuple
        # comparisons never reach index 2.  A bucket holds every pending
        # entry whose time lands in its window; the overflow heap holds
        # entries beyond the ring horizon.
        self._shift = bucket_bits
        self._ring_size = 1 << ring_bits
        self._mask = self._ring_size - 1
        self._ring: list[list[tuple[Any, ...]]] = [[] for _ in range(self._ring_size)]
        self._overflow: list[tuple[Any, ...]] = []
        self._cur_tick = 0
        #: Consumed prefix length of the active (current-tick) bucket.
        self._bucket_pos = 0
        #: Whether the active bucket has been activated (overflow adopted
        #: and sorted).  Inserts into an activated bucket use insort so the
        #: (time, sequence) total order survives mid-bucket scheduling.
        self._bucket_sorted = False
        #: Total queued entries (ring + overflow), including lazily
        #: cancelled ones not yet discarded.
        self._pending = 0
        self._now = 0
        self._sequence = 0
        self._seed = seed
        self._rngs: dict[str, np.random.Generator] = {}
        self._stopped = False
        self._compact_at = _COMPACT_FLOOR
        #: Timer re-arm bounces since construction (see :class:`Timer`);
        #: snapshot-diffed by :meth:`run` to keep ``events_executed``
        #: storage-independent.
        self._rearms = 0
        #: Per-run metrics registry.  The kernel's own perf counters live
        #: here under ``kernel.*`` names; components add theirs at snapshot
        #: time.  Reporting only — metrics never influence the simulation
        #: itself, so determinism is unaffected.
        self.metrics = MetricsRegistry()
        self._events_counter = self.metrics.counter("kernel.events_executed")
        self._wall_counter = self.metrics.counter("kernel.wall_seconds")
        self._compact_counter = self.metrics.counter("kernel.heap_compactions")
        self._rearm_counter = self.metrics.counter("kernel.timer_rearms")
        #: Structured trace sink (see :mod:`repro.obs`).  ``None`` — the
        #: default — is the zero-overhead disabled state: instrumented hot
        #: paths gate every emission on ``sim.tracer is not None``.
        self.tracer: "Tracer | None" = None

    # -- perf counters (aliases over the kernel.* registry cells) ------------

    @property
    def events_executed(self) -> int:
        """Simulation callbacks executed across all :meth:`run` calls.

        Timer re-arm bounces (lazy reprogramming surfacing a parked entry)
        are excluded — they execute no simulation work — so this count is
        identical to what an eager cancel-and-repush timer implementation
        would report for the same run.
        """
        return int(self._events_counter.value)

    @events_executed.setter
    def events_executed(self, value: int) -> None:
        self._events_counter.value = value

    @property
    def timer_rearms(self) -> int:
        """Parked-timer re-arm bounces absorbed by lazy reprogramming."""
        return int(self._rearm_counter.value)

    @timer_rearms.setter
    def timer_rearms(self, value: int) -> None:
        self._rearm_counter.value = value

    @property
    def wall_seconds(self) -> float:
        """Wall-clock seconds spent inside :meth:`run` so far."""
        return float(self._wall_counter.value)

    @wall_seconds.setter
    def wall_seconds(self, value: float) -> None:
        self._wall_counter.value = value

    @property
    def heap_compactions(self) -> int:
        """Lazy-cancel scheduler compactions performed so far."""
        return int(self._compact_counter.value)

    @heap_compactions.setter
    def heap_compactions(self, value: int) -> None:
        self._compact_counter.value = value

    # -- time ---------------------------------------------------------------

    @property
    def now(self) -> int:
        """Current simulation time in integer nanoseconds."""
        return self._now

    @property
    def now_seconds(self) -> float:
        """Current simulation time in float seconds (for reporting only)."""
        return self._now / SECOND

    # -- randomness ---------------------------------------------------------

    @property
    def seed(self) -> int:
        """The master seed this simulator was constructed with."""
        return self._seed

    def rng(self, stream: str) -> np.random.Generator:
        """Return the named deterministic random stream for ``stream``.

        Repeated calls with the same name return the same generator, so a
        component can call ``sim.rng("ecmp")`` wherever convenient.
        """
        generator = self._rngs.get(stream)
        if generator is None:
            from repro.net.hashing import stable_string_seed

            seed_seq = np.random.SeedSequence((self._seed, stable_string_seed(stream)))
            generator = np.random.default_rng(seed_seq)
            self._rngs[stream] = generator
        return generator

    # -- scheduling ----------------------------------------------------------

    def _insert(self, time: int, entry: tuple[Any, ...]) -> None:
        """Place ``entry`` (whose [0] is ``time``) into the calendar."""
        tick = time >> self._shift
        cur = self._cur_tick
        if tick - cur < self._ring_size:
            bucket = self._ring[tick & self._mask]
            if tick == cur and self._bucket_sorted:
                # Sequences are globally increasing, so a new entry sorts
                # after every queued entry at the same time: it belongs at
                # the tail unless an entry at a strictly later time exists.
                if bucket and time < bucket[-1][0]:
                    insort(bucket, entry, lo=self._bucket_pos)
                else:
                    bucket.append(entry)
            else:
                bucket.append(entry)
        else:
            heapq.heappush(self._overflow, entry)
        self._pending += 1

    def schedule(self, delay: int, callback: _AnyCallback, arg: Any = None) -> _Event:
        """Schedule ``callback`` to run ``delay`` ticks from now.

        When ``arg`` is not None the callback is invoked as ``callback(arg)``
        — the allocation-free alternative to binding the value in a closure.
        """
        if delay < 0:
            raise SimulationError(
                f"cannot schedule event at {self._now + delay} "
                f"before current time {self._now}"
            )
        time = self._now + delay
        sequence = self._sequence
        self._sequence = sequence + 1
        event = _Event(time, sequence, callback, arg)
        if self._pending >= self._compact_at:
            self._compact()
        self._insert(time, (time, sequence, event))
        return event

    def schedule_at(self, time: int, callback: _AnyCallback, arg: Any = None) -> _Event:
        """Schedule ``callback`` to run at absolute time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time} before current time {self._now}"
            )
        return self.schedule(time - self._now, callback, arg)

    def schedule_fast(self, delay: int, callback: Callable[[Any], None], arg: Any) -> None:
        """Schedule a *non-cancellable* ``callback(arg)`` with no handle.

        The per-packet path schedules two events per hop, none of which is
        ever cancelled; this variant skips the :class:`_Event` allocation
        entirely and places a bare ``(time, sequence, None, callback, arg)``
        entry.  It consumes one sequence number exactly like
        :meth:`schedule`, so mixing the two paths cannot perturb event
        tie-breaking.  Use only when the event will never be cancelled.
        """
        if delay < 0:
            raise SimulationError(
                f"cannot schedule event at {self._now + delay} "
                f"before current time {self._now}"
            )
        time = self._now + delay
        sequence = self._sequence
        self._sequence = sequence + 1
        tick = time >> self._shift
        cur = self._cur_tick
        if tick - cur < self._ring_size:
            bucket = self._ring[tick & self._mask]
            if tick == cur and self._bucket_sorted and bucket and time < bucket[-1][0]:
                insort(bucket, (time, sequence, None, callback, arg), lo=self._bucket_pos)
            else:
                bucket.append((time, sequence, None, callback, arg))
        else:
            heapq.heappush(self._overflow, (time, sequence, None, callback, arg))
        self._pending += 1

    @staticmethod
    def cancel(event: _Event) -> None:
        """Cancel a pending event (lazy deletion)."""
        event.cancelled = True

    def _compact(self) -> None:
        """Drop lazily-cancelled entries when they outnumber live ones.

        Called from :meth:`schedule` at geometrically spaced pending-set
        sizes, so the scan amortizes to O(1) per insert; the rebuild itself
        only happens when at least half the calendar is dead weight.
        """
        total = self._pending
        live: list[tuple[Any, ...]] = []
        pos = self._bucket_pos
        cur_bucket = self._ring[self._cur_tick & self._mask]
        for bucket in self._ring:
            start = pos if bucket is cur_bucket else 0
            for i in range(start, len(bucket)):
                entry = bucket[i]
                event = entry[2]
                if event is None or not event.cancelled:
                    live.append(entry)
        for entry in self._overflow:
            event = entry[2]
            if event is None or not event.cancelled:
                live.append(entry)
        if len(live) * 2 <= total:
            for bucket in self._ring:
                bucket.clear()
            self._overflow.clear()
            self._bucket_pos = 0
            self._bucket_sorted = False
            self._pending = 0
            for entry in live:
                self._insert(entry[0], entry)
            self._compact_counter.value += 1
        self._compact_at = max(_COMPACT_FLOOR, 2 * self._pending)

    # -- execution -----------------------------------------------------------

    def run(self, until: int | None = None, max_events: int | None = None) -> int:
        """Run until the calendar drains, ``until`` is reached, or stopped.

        Returns the simulation time at exit.  ``until`` is an absolute time;
        when it is hit the clock is advanced exactly to it so that subsequent
        ``run`` calls resume cleanly.
        """
        self._stopped = False
        executed = 0
        rearms_start = self._rearms
        limit = _FAR if until is None else until
        shift = self._shift
        mask = self._mask
        ring = self._ring
        overflow = self._overflow
        pop = heapq.heappop
        # The event loop allocates container objects (entry tuples, packets,
        # headers) at a rate that makes CPython's gen-0 collector fire
        # thousands of times per simulated second, yet nearly everything is
        # freed by refcounting (cyclic garbage over a whole run is a few
        # hundred objects).  Pause collection for the duration of the loop;
        # object lifetimes are unchanged, so behavior is identical.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        started = perf_counter()  # repro-lint: ignore[D101] -- feeds wall_seconds, reporting only
        try:
            while self._pending and not self._stopped:
                tick = self._cur_tick
                bucket = ring[tick & mask]
                if not self._bucket_sorted:
                    # Activate: adopt due overflow entries, then order the
                    # bucket once so draining is an index walk.
                    if overflow and (overflow[0][0] >> shift) <= tick:
                        bound = (tick + 1) << shift
                        while overflow and overflow[0][0] < bound:
                            bucket.append(pop(overflow))
                    if len(bucket) > 1:
                        bucket.sort()
                    self._bucket_sorted = True
                pos = self._bucket_pos
                if pos >= len(bucket):
                    # Bucket drained: advance the wheel (jumping straight to
                    # the overflow head when the whole ring is empty).
                    if pos:
                        bucket.clear()
                        self._bucket_pos = 0
                    self._bucket_sorted = False
                    if self._pending == len(overflow):
                        self._cur_tick = overflow[0][0] >> shift
                    else:
                        self._cur_tick = tick + 1
                    continue
                entry = bucket[pos]
                time = entry[0]
                if time > limit:
                    self._now = until  # type: ignore[assignment]
                    # Rewind the wheel so events scheduled between runs at
                    # times before this (future) bucket still land ahead of
                    # the scan position.  pos > 0 implies the deadline falls
                    # inside the active bucket, where no rewind is needed.
                    new_tick = limit >> shift
                    if new_tick != tick:
                        self._cur_tick = new_tick
                        self._bucket_sorted = False
                    return self._now
                self._bucket_pos = pos + 1
                self._pending -= 1
                event = entry[2]
                if event is None:  # bare (time, seq, None, callback, arg)
                    self._now = time
                    entry[3](entry[4])
                elif event.cancelled:
                    continue  # discarded without advancing the clock
                else:
                    self._now = time
                    arg = event.arg
                    if arg is None:
                        event.callback()
                    else:
                        event.callback(arg)
                executed += 1
                if max_events is not None and executed >= max_events:
                    break
        finally:
            rearms = self._rearms - rearms_start
            self._events_counter.value += executed - rearms
            self._rearm_counter.value += rearms
            self._wall_counter.value += perf_counter() - started  # repro-lint: ignore[D101] -- reporting only
            if gc_was_enabled:
                gc.enable()
        if until is not None and not self._pending and self._now < until:
            self._now = until
        return self._now

    def stop(self) -> None:
        """Stop the current :meth:`run` loop after the executing event."""
        self._stopped = True

    @property
    def pending_events(self) -> int:
        """Number of scheduled (possibly cancelled) events still queued."""
        return self._pending

    def _next_pending(self) -> tuple[list[tuple[Any, ...]] | None, int, tuple[Any, ...] | None]:
        """Locate the globally next pending entry without moving the wheel.

        Returns ``(container, index, entry)`` where ``container`` is the
        ring bucket holding the entry (``None`` when it lives at the head of
        the overflow heap).  Cold path — used only by bookkeeping such as
        :attr:`pending_live_events`.
        """
        overflow = self._overflow
        best: tuple[Any, ...] | None = overflow[0] if overflow else None
        cur = self._cur_tick
        for offset in range(self._ring_size):
            bucket = self._ring[(cur + offset) & self._mask]
            start = self._bucket_pos if offset == 0 else 0
            if start >= len(bucket):
                continue
            if offset == 0 and self._bucket_sorted:
                candidate = bucket[start]
                index = start
            else:
                index = min(range(start, len(bucket)), key=bucket.__getitem__)
                candidate = bucket[index]
            if best is None or candidate < best:  # type: ignore[operator]
                return self._ring[(cur + offset) & self._mask], index, candidate
            break  # earlier ring entries cannot exist in later buckets
        if best is not None:
            return None, 0, best
        return None, 0, None

    @property
    def pending_live_events(self) -> int:
        """Number of queued events that are not lazily cancelled, seen from
        the front of the schedule.

        Prunes cancelled events off the schedule front first, so a calendar
        holding *only* cancelled entries reports zero (and frees them)
        instead of making idle-detection loops spin until their timestamps
        pass.  Cancelled events buried under live ones are still counted —
        they are discarded cheaply when they surface.  A parked
        :class:`Timer` event whose soft deadline moved counts as one live
        event, exactly like the eager event it replaces.
        """
        while self._pending:
            container, index, entry = self._next_pending()
            if entry is None:  # pragma: no cover - pending implies an entry
                break
            event = entry[2]
            if event is None or not event.cancelled:
                break
            if container is None:
                heapq.heappop(self._overflow)
            elif index == self._bucket_pos and container is self._ring[
                self._cur_tick & self._mask
            ]:
                self._bucket_pos = index + 1
            else:
                del container[index]
            self._pending -= 1
        return self._pending

    @property
    def events_per_sec(self) -> float:
        """Average event throughput of all :meth:`run` calls so far."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.events_executed / self.wall_seconds


class Timer:
    """A restartable one-shot timer bound to a simulator.

    Typical uses: TCP retransmission timers, CONGA metric-aging scans, and
    DRE decay ticks (via :meth:`PeriodicTimer`-style rescheduling in the
    callback).  ``start`` on a running timer restarts it.

    Restarts are *lazily reprogrammed*: pushing the expiry later only moves
    ``_deadline`` and records the restart's sequence number; the entry
    already queued at the old expiry re-arms itself at the new deadline when
    it surfaces.  Each restart still consumes exactly one kernel sequence
    number — the same count the eager cancel-and-repush implementation
    consumed — so event tie-breaking, and with it whole-run determinism, is
    unchanged while per-ACK RTO restarts stop touching the calendar at all.
    Only a restart that pulls the expiry *earlier* than the queued entry
    (e.g. an RTT collapse shrinking the RTO) pays for a cancel and re-push.
    Re-arm bounces increment ``Simulator.timer_rearms`` instead of
    ``events_executed`` — see the kernel module docstring.
    """

    __slots__ = ("_sim", "_callback", "_event", "_deadline", "_seq")

    def __init__(self, sim: Simulator, callback: Callback) -> None:
        self._sim = sim
        self._callback = callback
        self._event: _Event | None = None
        self._deadline: int | None = None
        self._seq = 0

    @property
    def running(self) -> bool:
        """Whether the timer currently has a pending expiry."""
        return self._deadline is not None

    @property
    def expires_at(self) -> int | None:
        """Absolute expiry time, or None if not running."""
        return self._deadline

    def start(self, delay: int) -> None:
        """(Re)arm the timer to fire ``delay`` ticks from now."""
        if delay < 0:
            raise SimulationError(f"cannot start a timer {-delay} ticks in the past")
        sim = self._sim
        deadline = sim._now + delay
        sequence = sim._sequence
        sim._sequence = sequence + 1
        self._deadline = deadline
        self._seq = sequence
        event = self._event
        if event is not None:
            if event.time <= deadline:
                return  # soft move: the queued entry re-arms on surfacing
            event.cancelled = True  # pulled earlier: the entry is useless
        event = _Event(deadline, sequence, self._fire)
        self._event = event
        sim._insert(deadline, (deadline, sequence, event))

    def stop(self) -> None:
        """Disarm the timer if it is running."""
        event = self._event
        if event is not None:
            event.cancelled = True
            self._event = None
        self._deadline = None

    def _fire(self) -> None:
        deadline = self._deadline
        if deadline is None:  # pragma: no cover - stop() cancels the entry
            self._event = None
            return
        sim = self._sim
        event = self._event
        assert event is not None  # invariant: a deadline implies a queued entry
        sequence = self._seq
        if deadline > sim._now or sequence != event.sequence:
            # The soft deadline moved while we were queued: re-arm at the
            # deadline, reusing this entry's object and the sequence number
            # allocated by the restart that moved it.  The sequence check
            # matters when the restart landed exactly on the queued expiry
            # (deadline == now): the eager implementation would have fired
            # at the restart's sequence position among same-time events, so
            # re-push rather than firing early at the stale position.
            event.time = deadline
            event.sequence = sequence
            sim._rearms += 1
            sim._insert(deadline, (deadline, sequence, event))
            return
        self._event = None
        self._deadline = None
        self._callback()


class PeriodicTimer:
    """Fires a callback every ``period`` ticks until stopped.

    Used for DRE multiplicative decay and the flowlet-table age-bit scan,
    both of which the CONGA ASIC implements as free-running hardware timers.
    """

    def __init__(
        self,
        sim: Simulator,
        period: int,
        callback: Callback,
        *,
        start: bool = True,
        jitter_stream: str | None = None,
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self._sim = sim
        self.period = period
        self._callback = callback
        self._event: _Event | None = None
        self._jitter_stream = jitter_stream
        if start:
            self.start()

    @property
    def running(self) -> bool:
        """Whether the periodic timer is active."""
        return self._event is not None

    def start(self) -> None:
        """Start ticking; the first tick occurs one period from now."""
        if self._event is None:
            self._event = self._sim.schedule(self._next_delay(), self._fire)

    def stop(self) -> None:
        """Stop ticking."""
        if self._event is not None:
            Simulator.cancel(self._event)
            self._event = None

    def _next_delay(self) -> int:
        if self._jitter_stream is None:
            return self.period
        rng = self._sim.rng(self._jitter_stream)
        # +/-5% jitter de-synchronizes the many per-port timers, mirroring
        # independent hardware clocks.
        return max(1, round(self.period * rng.uniform(0.95, 1.05)))

    def _fire(self) -> None:
        self._event = self._sim.schedule(self._next_delay(), self._fire)
        self._callback()


def run_until_idle(sim: Simulator, quantum: int = SECOND, max_quanta: int = 10_000) -> int:
    """Drive ``sim`` in fixed quanta until no events remain.

    Convenience for tests and examples that want "run to completion" without
    picking a horizon in advance.  Uses :attr:`Simulator.pending_live_events`
    so a calendar holding only cancelled timers (e.g. a disarmed 60 s RTO)
    counts as idle immediately instead of burning one quantum per tick until
    the stale timestamps pass.
    """
    quanta = 0
    while sim.pending_live_events:
        sim.run(until=sim.now + quantum)
        quanta += 1
        if quanta >= max_quanta:
            raise SimulationError("simulation did not go idle within the quanta budget")
    return sim.now


__all__ = [
    "Callback",
    "PeriodicTimer",
    "SimulationError",
    "Simulator",
    "Timer",
    "run_until_idle",
]
