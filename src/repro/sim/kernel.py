"""Discrete-event simulation kernel.

The kernel is a classic calendar built on a binary heap.  Events are callbacks
scheduled at an integer-nanosecond timestamp; ties are broken by insertion
order so that runs are fully deterministic.  Components interact with the
kernel through :class:`Simulator` (``now``, ``schedule``, ``run``) and through
:class:`Timer` for restartable timeouts (retransmission timers, flowlet age
scans, DRE decay, ...).

Hot-path design notes (the evaluation needs millions of events per point):

* Heap entries are ``(time, sequence, event)`` tuples, so ``heappush`` /
  ``heappop`` compare integer tuples in C and never call back into Python —
  ``(time, sequence)`` is unique, so the trailing event object is never
  compared.
* Events may carry one ``arg`` delivered to the callback at fire time, so
  per-packet scheduling passes a bound method plus the packet instead of
  allocating a fresh closure per hop.
* :class:`Timer` uses *lazy reprogramming*: restarting a running timer only
  moves a soft deadline; the already-queued heap entry re-arms itself when
  it surfaces.  A TCP sender restarting its RTO on every ACK therefore costs
  two attribute writes, not a heap push — while consuming one sequence
  number per restart exactly like the eager implementation did, which keeps
  event tie-breaking (and therefore whole-run results) bit-identical.
* The heap compacts itself when more than half its entries are lazily
  cancelled, so storms of cancelled timers cannot inflate every subsequent
  push/pop forever.
"""

from __future__ import annotations

import heapq
from time import perf_counter
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from repro.obs.metrics import MetricsRegistry
from repro.units import SECOND

if TYPE_CHECKING:
    from repro.obs.trace import Tracer

Callback = Callable[[], None]

#: Internal callback shape: zero-argument, or one-argument when scheduled
#: with the ``arg`` fast path.  ``...`` rather than a union so call sites
#: that dispatch on ``arg is None`` type-check under strict mypy.
_AnyCallback = Callable[..., None]


class SimulationError(RuntimeError):
    """Raised for scheduling errors such as events in the past."""


class _Event:
    """A calendar entry and cancellation handle.

    The heap orders ``(time, sequence)`` tuples, not these objects; the
    object rides along as the tuple's third element so cancellation stays an
    O(1) flag write.  ``arg`` is delivered to ``callback`` at fire time when
    not None (the no-allocation path for per-packet events).
    """

    __slots__ = ("time", "sequence", "callback", "arg", "cancelled")

    def __init__(
        self, time: int, sequence: int, callback: _AnyCallback, arg: Any = None
    ) -> None:
        self.time = time
        self.sequence = sequence
        self.callback = callback
        self.arg = arg
        self.cancelled = False

    def __lt__(self, other: "_Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.sequence < other.sequence

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"_Event(t={self.time}, seq={self.sequence}{state})"


#: Heaps smaller than this are never worth compacting.
_COMPACT_FLOOR = 64


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed for the experiment.  Every component obtains its own
        independent, named substream via :meth:`rng`, so adding a new
        stochastic component never perturbs the draws of existing ones.
    """

    def __init__(self, seed: int = 1) -> None:
        # Entries are (time, sequence, event) for cancellable events and
        # (time, sequence, None, callback, arg) for the no-handle fast path;
        # (time, sequence) is unique so comparisons never reach index 2.
        self._heap: list[tuple[Any, ...]] = []
        self._now = 0
        self._sequence = 0
        self._seed = seed
        self._rngs: dict[str, np.random.Generator] = {}
        self._stopped = False
        self._compact_at = _COMPACT_FLOOR
        #: Per-run metrics registry.  The kernel's own perf counters live
        #: here under ``kernel.*`` names; components add theirs at snapshot
        #: time.  Reporting only — metrics never influence the simulation
        #: itself, so determinism is unaffected.
        self.metrics = MetricsRegistry()
        self._events_counter = self.metrics.counter("kernel.events_executed")
        self._wall_counter = self.metrics.counter("kernel.wall_seconds")
        self._compact_counter = self.metrics.counter("kernel.heap_compactions")
        #: Structured trace sink (see :mod:`repro.obs`).  ``None`` — the
        #: default — is the zero-overhead disabled state: instrumented hot
        #: paths gate every emission on ``sim.tracer is not None``.
        self.tracer: "Tracer | None" = None

    # -- perf counters (aliases over the kernel.* registry cells) ------------

    @property
    def events_executed(self) -> int:
        """Total events executed across all :meth:`run` calls."""
        return int(self._events_counter.value)

    @events_executed.setter
    def events_executed(self, value: int) -> None:
        self._events_counter.value = value

    @property
    def wall_seconds(self) -> float:
        """Wall-clock seconds spent inside :meth:`run` so far."""
        return float(self._wall_counter.value)

    @wall_seconds.setter
    def wall_seconds(self, value: float) -> None:
        self._wall_counter.value = value

    @property
    def heap_compactions(self) -> int:
        """Lazy-cancel heap compactions performed so far."""
        return int(self._compact_counter.value)

    @heap_compactions.setter
    def heap_compactions(self, value: int) -> None:
        self._compact_counter.value = value

    # -- time ---------------------------------------------------------------

    @property
    def now(self) -> int:
        """Current simulation time in integer nanoseconds."""
        return self._now

    @property
    def now_seconds(self) -> float:
        """Current simulation time in float seconds (for reporting only)."""
        return self._now / SECOND

    # -- randomness ---------------------------------------------------------

    @property
    def seed(self) -> int:
        """The master seed this simulator was constructed with."""
        return self._seed

    def rng(self, stream: str) -> np.random.Generator:
        """Return the named deterministic random stream for ``stream``.

        Repeated calls with the same name return the same generator, so a
        component can call ``sim.rng("ecmp")`` wherever convenient.
        """
        generator = self._rngs.get(stream)
        if generator is None:
            from repro.net.hashing import stable_string_seed

            seed_seq = np.random.SeedSequence((self._seed, stable_string_seed(stream)))
            generator = np.random.default_rng(seed_seq)
            self._rngs[stream] = generator
        return generator

    # -- scheduling ----------------------------------------------------------

    def schedule(self, delay: int, callback: _AnyCallback, arg: Any = None) -> _Event:
        """Schedule ``callback`` to run ``delay`` ticks from now.

        When ``arg`` is not None the callback is invoked as ``callback(arg)``
        — the allocation-free alternative to binding the value in a closure.
        """
        if delay < 0:
            raise SimulationError(
                f"cannot schedule event at {self._now + delay} "
                f"before current time {self._now}"
            )
        time = self._now + delay
        sequence = self._sequence
        self._sequence = sequence + 1
        event = _Event(time, sequence, callback, arg)
        heap = self._heap
        if len(heap) >= self._compact_at:
            self._compact_heap()
        heapq.heappush(heap, (time, sequence, event))
        return event

    def schedule_at(self, time: int, callback: _AnyCallback, arg: Any = None) -> _Event:
        """Schedule ``callback`` to run at absolute time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time} before current time {self._now}"
            )
        return self.schedule(time - self._now, callback, arg)

    def schedule_fast(self, delay: int, callback: Callable[[Any], None], arg: Any) -> None:
        """Schedule a *non-cancellable* ``callback(arg)`` with no handle.

        The per-packet path schedules two events per hop, none of which is
        ever cancelled; this variant skips the :class:`_Event` allocation
        entirely and pushes a bare ``(time, sequence, None, callback, arg)``
        entry.  It consumes one sequence number exactly like
        :meth:`schedule`, so mixing the two paths cannot perturb event
        tie-breaking.  Use only when the event will never be cancelled.
        """
        if delay < 0:
            raise SimulationError(
                f"cannot schedule event at {self._now + delay} "
                f"before current time {self._now}"
            )
        time = self._now + delay
        sequence = self._sequence
        self._sequence = sequence + 1
        heap = self._heap
        if len(heap) >= self._compact_at:
            self._compact_heap()
        heapq.heappush(heap, (time, sequence, None, callback, arg))

    @staticmethod
    def cancel(event: _Event) -> None:
        """Cancel a pending event (lazy deletion)."""
        event.cancelled = True

    def _compact_heap(self) -> None:
        """Drop lazily-cancelled entries when they outnumber live ones.

        Called from :meth:`schedule` at geometrically spaced heap sizes, so
        the scan amortizes to O(1) per push; the rebuild itself only happens
        when at least half the heap is dead weight.
        """
        heap = self._heap
        live = [
            entry for entry in heap if entry[2] is None or not entry[2].cancelled
        ]
        if len(live) * 2 <= len(heap):
            # In-place replacement: the run loop (and any caller) may hold a
            # local alias to the heap list, so the list object must survive.
            heap[:] = live
            heapq.heapify(heap)
            self._compact_counter.value += 1
        self._compact_at = max(_COMPACT_FLOOR, 2 * len(heap))

    # -- execution -----------------------------------------------------------

    def run(self, until: int | None = None, max_events: int | None = None) -> int:
        """Run until the event heap drains, ``until`` is reached, or stopped.

        Returns the simulation time at exit.  ``until`` is an absolute time;
        when it is hit the clock is advanced exactly to it so that subsequent
        ``run`` calls resume cleanly.
        """
        self._stopped = False
        executed = 0
        heap = self._heap
        pop = heapq.heappop
        started = perf_counter()  # repro-lint: ignore[D101] -- feeds wall_seconds, reporting only
        try:
            while heap and not self._stopped:
                entry = heap[0]
                event = entry[2]
                if event is not None and event.cancelled:
                    pop(heap)
                    continue
                time = entry[0]
                if until is not None and time > until:
                    self._now = until
                    return self._now
                pop(heap)
                self._now = time
                if event is None:  # bare (time, seq, None, callback, arg)
                    entry[3](entry[4])
                else:
                    arg = event.arg
                    if arg is None:
                        event.callback()
                    else:
                        event.callback(arg)
                executed += 1
                if max_events is not None and executed >= max_events:
                    break
        finally:
            self._events_counter.value += executed
            self._wall_counter.value += perf_counter() - started  # repro-lint: ignore[D101] -- reporting only
        if until is not None and not heap and self._now < until:
            self._now = until
        return self._now

    def stop(self) -> None:
        """Stop the current :meth:`run` loop after the executing event."""
        self._stopped = True

    @property
    def pending_events(self) -> int:
        """Number of scheduled (possibly cancelled) events still queued."""
        return len(self._heap)

    @property
    def pending_live_events(self) -> int:
        """Number of queued events that are not lazily cancelled.

        Prunes cancelled events off the heap top first, so a heap holding
        *only* cancelled entries reports zero (and frees them) instead of
        making idle-detection loops spin until their timestamps pass.
        Cancelled events buried under live ones are still counted — they are
        discarded cheaply when they surface.  A parked :class:`Timer` event
        whose soft deadline moved counts as one live event, exactly like the
        eager event it replaces.
        """
        heap = self._heap
        while heap and heap[0][2] is not None and heap[0][2].cancelled:
            heapq.heappop(heap)
        return len(heap)

    @property
    def events_per_sec(self) -> float:
        """Average event throughput of all :meth:`run` calls so far."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.events_executed / self.wall_seconds


class Timer:
    """A restartable one-shot timer bound to a simulator.

    Typical uses: TCP retransmission timers, CONGA metric-aging scans, and
    DRE decay ticks (via :meth:`PeriodicTimer`-style rescheduling in the
    callback).  ``start`` on a running timer restarts it.

    Restarts are *lazily reprogrammed*: pushing the expiry later only moves
    ``_deadline`` and records the restart's sequence number; the heap entry
    already queued at the old expiry re-arms itself at the new deadline when
    it fires.  Each restart still consumes exactly one kernel sequence
    number — the same count the eager cancel-and-repush implementation
    consumed — so event tie-breaking, and with it whole-run determinism, is
    unchanged while per-ACK RTO restarts stop touching the heap entirely.
    Only a restart that pulls the expiry *earlier* than the queued entry
    (e.g. an RTT collapse shrinking the RTO) pays for a cancel and re-push.
    """

    __slots__ = ("_sim", "_callback", "_event", "_deadline", "_seq")

    def __init__(self, sim: Simulator, callback: Callback) -> None:
        self._sim = sim
        self._callback = callback
        self._event: _Event | None = None
        self._deadline: int | None = None
        self._seq = 0

    @property
    def running(self) -> bool:
        """Whether the timer currently has a pending expiry."""
        return self._deadline is not None

    @property
    def expires_at(self) -> int | None:
        """Absolute expiry time, or None if not running."""
        return self._deadline

    def start(self, delay: int) -> None:
        """(Re)arm the timer to fire ``delay`` ticks from now."""
        if delay < 0:
            raise SimulationError(f"cannot start a timer {-delay} ticks in the past")
        sim = self._sim
        deadline = sim._now + delay
        sequence = sim._sequence
        sim._sequence = sequence + 1
        self._deadline = deadline
        self._seq = sequence
        event = self._event
        if event is not None:
            if event.time <= deadline:
                return  # soft move: the queued entry re-arms on surfacing
            event.cancelled = True  # pulled earlier: the entry is useless
        event = _Event(deadline, sequence, self._fire)
        self._event = event
        heapq.heappush(sim._heap, (deadline, sequence, event))

    def stop(self) -> None:
        """Disarm the timer if it is running."""
        event = self._event
        if event is not None:
            event.cancelled = True
            self._event = None
        self._deadline = None

    def _fire(self) -> None:
        deadline = self._deadline
        if deadline is None:  # pragma: no cover - stop() cancels the entry
            self._event = None
            return
        sim = self._sim
        event = self._event
        assert event is not None  # invariant: a deadline implies a queued entry
        sequence = self._seq
        if deadline > sim._now or sequence != event.sequence:
            # The soft deadline moved while we were queued: re-arm at the
            # deadline, reusing this entry's object and the sequence number
            # allocated by the restart that moved it.  The sequence check
            # matters when the restart landed exactly on the queued expiry
            # (deadline == now): the eager implementation would have fired
            # at the restart's sequence position among same-time events, so
            # re-push rather than firing early at the stale position.
            event.time = deadline
            event.sequence = sequence
            heapq.heappush(sim._heap, (deadline, sequence, event))
            return
        self._event = None
        self._deadline = None
        self._callback()


class PeriodicTimer:
    """Fires a callback every ``period`` ticks until stopped.

    Used for DRE multiplicative decay and the flowlet-table age-bit scan,
    both of which the CONGA ASIC implements as free-running hardware timers.
    """

    def __init__(
        self,
        sim: Simulator,
        period: int,
        callback: Callback,
        *,
        start: bool = True,
        jitter_stream: str | None = None,
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self._sim = sim
        self.period = period
        self._callback = callback
        self._event: _Event | None = None
        self._jitter_stream = jitter_stream
        if start:
            self.start()

    @property
    def running(self) -> bool:
        """Whether the periodic timer is active."""
        return self._event is not None

    def start(self) -> None:
        """Start ticking; the first tick occurs one period from now."""
        if self._event is None:
            self._event = self._sim.schedule(self._next_delay(), self._fire)

    def stop(self) -> None:
        """Stop ticking."""
        if self._event is not None:
            Simulator.cancel(self._event)
            self._event = None

    def _next_delay(self) -> int:
        if self._jitter_stream is None:
            return self.period
        rng = self._sim.rng(self._jitter_stream)
        # +/-5% jitter de-synchronizes the many per-port timers, mirroring
        # independent hardware clocks.
        return max(1, round(self.period * rng.uniform(0.95, 1.05)))

    def _fire(self) -> None:
        self._event = self._sim.schedule(self._next_delay(), self._fire)
        self._callback()


def run_until_idle(sim: Simulator, quantum: int = SECOND, max_quanta: int = 10_000) -> int:
    """Drive ``sim`` in fixed quanta until no events remain.

    Convenience for tests and examples that want "run to completion" without
    picking a horizon in advance.  Uses :attr:`Simulator.pending_live_events`
    so a heap holding only cancelled timers (e.g. a disarmed 60 s RTO) counts
    as idle immediately instead of burning one quantum per tick until the
    stale timestamps pass.
    """
    quanta = 0
    while sim.pending_live_events:
        sim.run(until=sim.now + quantum)
        quanta += 1
        if quanta >= max_quanta:
            raise SimulationError("simulation did not go idle within the quanta budget")
    return sim.now


__all__ = [
    "Callback",
    "PeriodicTimer",
    "SimulationError",
    "Simulator",
    "Timer",
    "run_until_idle",
]
