"""Deterministic discrete-event simulation kernel."""

from repro.sim.kernel import (
    Callback,
    PeriodicTimer,
    SimulationError,
    Simulator,
    Timer,
    run_until_idle,
)

__all__ = [
    "Callback",
    "PeriodicTimer",
    "SimulationError",
    "Simulator",
    "Timer",
    "run_until_idle",
]
